//! Per-channel memory controller with bank state tracking.
//!
//! The model is an open-page policy with in-order issue per channel and
//! bank-level parallelism: a request's column command waits for its bank
//! (activate/precharge latency on a row miss) while other banks' transfers
//! keep the data bus busy. This captures the first-order behaviour that
//! differentiates protection schemes — metadata accesses break row locality
//! and add serialized activates — without a full command-level replay.
//!
//! Two kernels replay a request stream:
//!
//! * [`DramSim::access`]/[`DramSim::access_timed`] — the exact per-access
//!   kernel, one full front-end evaluation per request.
//! * [`DramSim::run_batch`] — the streak-batched replay kernel. DNN
//!   traces are overwhelmingly streaming, so most per-access work is
//!   redundant: a run of row hits on an uncontended bank advances the
//!   bank and bus clocks by a closed-form amount. The batched kernel
//!   detects such streaks and applies their timing and statistics in
//!   O(1) per streak, falling back to the exact kernel on any row
//!   change, bank conflict, direction change, or refresh-window
//!   straddle. It is bit-identical to the per-access kernel — the
//!   `dram-batch` family of `seda-validate` and the conformance tests
//!   in this crate enforce that, stat for stat.

use crate::config::DramConfig;
use crate::mapping::{AddressMapping, DramCoord};
use crate::request::{Request, RowOutcome};
use crate::stats::DramStats;

#[derive(Debug, Clone, Copy)]
struct BankState {
    open_row: Option<u64>,
    /// Earliest cycle the bank can accept its next column command
    /// (enforces column-to-column spacing, tCCD).
    next_col: u64,
    /// Cycle after which the bank may be precharged (in-flight data plus
    /// write recovery must drain first).
    busy_until: u64,
    /// Cycle of the last activate (for tRAS enforcement on precharge).
    activated: u64,
    /// Cumulative cycles this bank spent occupied by an access (column
    /// command through data drain and write recovery).
    occupied: u64,
}

impl BankState {
    fn new() -> Self {
        Self {
            open_row: None,
            next_col: 0,
            busy_until: 0,
            activated: 0,
            occupied: 0,
        }
    }
}

/// Per-channel clocks, kept apart from the bank array so the hot path
/// touches one small struct per request.
#[derive(Debug, Clone, Copy)]
struct ChannelClock {
    /// Cycle after which the data bus is free.
    bus_free: u64,
    /// Clock of the most recent command issue (monotonic per channel).
    now: u64,
}

impl ChannelClock {
    fn new() -> Self {
        Self {
            bus_free: 0,
            now: 0,
        }
    }
}

/// Timing of one access: its row-buffer outcome plus the half-open
/// `[data_start, data_end)` window its data occupied the channel bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessTiming {
    /// Row-buffer outcome of the access.
    pub outcome: RowOutcome,
    /// Channel the access mapped to.
    pub channel: u32,
    /// Memory-controller cycle the data burst started on the bus.
    pub data_start: u64,
    /// Cycle the data burst left the bus (`data_start + t_bl`).
    pub data_end: u64,
}

/// A steady streak on one channel: the last access went to this bank and
/// row with this direction, so the next same-key access is a pure bus-rate
/// row hit with a closed-form issue time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StreakKey {
    bank: usize,
    row: u64,
    is_write: bool,
}

/// A multi-channel DRAM timing simulator.
///
/// Feed it a request stream with [`DramSim::access`] (or in bulk with
/// [`DramSim::run`]/[`DramSim::run_batch`]) and read aggregate timing from
/// [`DramSim::stats`]. Bank and bus state persist across calls, so a
/// whole inference can be simulated layer by layer.
///
/// # Examples
///
/// ```
/// use seda_dram::{DramConfig, DramSim, Request};
///
/// let mut sim = DramSim::new(DramConfig::edge());
/// for i in 0..1024u64 {
///     sim.access(Request::read(i * 64));
/// }
/// let stats = sim.stats();
/// assert_eq!(stats.reads, 1024);
/// assert!(stats.row_hits > stats.row_conflicts, "streaming should hit rows");
/// ```
#[derive(Debug, Clone)]
pub struct DramSim {
    config: DramConfig,
    mapping: AddressMapping,
    /// Per-channel bus/arrival clocks.
    clocks: Vec<ChannelClock>,
    /// All banks of all channels in one flat array, channel-major:
    /// `channel * banks_per_channel + rank * banks + bank`.
    banks: Vec<BankState>,
    banks_per_channel: usize,
    stats: DramStats,
}

impl DramSim {
    /// Creates a simulator with all banks precharged at cycle zero.
    pub fn new(config: DramConfig) -> Self {
        let mapping = AddressMapping::new(&config);
        let banks_per_channel = (config.banks * config.ranks) as usize;
        let channels = config.channels as usize;
        Self {
            config,
            mapping,
            clocks: vec![ChannelClock::new(); channels],
            banks: vec![BankState::new(); channels * banks_per_channel],
            banks_per_channel,
            stats: DramStats::default(),
        }
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Simulates one 64 B access and returns its row-buffer outcome.
    pub fn access(&mut self, req: Request) -> RowOutcome {
        self.access_timed(req).outcome
    }

    /// Like [`DramSim::access`], additionally exposing the transfer's
    /// data-bus occupancy window — the observability hook the validation
    /// harness uses to check refresh exclusion, bus serialization, and
    /// per-channel clock monotonicity without reconstructing timings from
    /// aggregate counters.
    pub fn access_timed(&mut self, req: Request) -> AccessTiming {
        let coord = self.mapping.decode(req.addr);
        let timing = self.access_decoded(req, coord);
        self.stats.record(req, timing.outcome);
        timing
    }

    fn access_decoded(&mut self, req: Request, coord: DramCoord) -> AccessTiming {
        let cfg = &self.config;
        let ch = coord.channel as usize;
        let clock = &mut self.clocks[ch];
        let bank_idx = (coord.rank * cfg.banks + coord.bank) as usize;
        let bank = &mut self.banks[ch * self.banks_per_channel + bank_idx];

        // FR-FCFS-style front end: a request to a ready bank may issue
        // while another bank resolves a row conflict; only the data bus
        // and per-bank state serialize. `now` advances with the stream so
        // requests cannot issue before they arrive.
        let arrival = clock.now;
        let outcome;
        // Cycle at which the column command can be issued to this bank.
        let col_ready = match bank.open_row {
            Some(row) if row == coord.row => {
                outcome = RowOutcome::Hit;
                arrival.max(bank.next_col)
            }
            Some(_) => {
                outcome = RowOutcome::Conflict;
                // Precharge (after in-flight data drains and tRAS elapses),
                // then activate, then the column command after tRCD.
                let pre_at = arrival.max(bank.busy_until).max(bank.activated + cfg.t_ras);
                let act_at = pre_at + cfg.t_rp;
                bank.activated = act_at;
                act_at + cfg.t_rcd
            }
            None => {
                outcome = RowOutcome::Empty;
                let act_at = arrival.max(bank.next_col);
                bank.activated = act_at;
                act_at + cfg.t_rcd
            }
        };
        bank.open_row = Some(coord.row);

        let cas = if req.is_write { cfg.t_cwl } else { cfg.t_cl };
        // Data occupies the bus for t_bl cycles after CAS latency; column
        // commands to the same bank pipeline at tCCD (= burst) spacing.
        // All-bank refresh blocks the channel for tRFC every tREFI: a
        // transfer landing inside a refresh window slips past it.
        let mut data_start = (col_ready + cas).max(clock.bus_free);
        if cfg.t_refi > 0 {
            let phase = data_start % cfg.t_refi;
            if phase < cfg.t_rfc {
                self.stats.refresh_stall_cycles += cfg.t_rfc - phase;
                data_start += cfg.t_rfc - phase;
            }
        }
        let data_end = data_start + cfg.t_bl;
        self.stats.bus_busy_cycles += cfg.t_bl;
        clock.bus_free = data_end;
        // Arrival time advances with the bus, not with stalled banks: a
        // conflicted request does not block younger requests to other banks.
        clock.now = clock.now.max(data_start.saturating_sub(cas + cfg.t_rcd));
        bank.next_col = data_start - cas + cfg.t_bl;
        bank.busy_until = if req.is_write {
            data_end + cfg.t_wr
        } else {
            data_end
        };
        bank.occupied += bank.busy_until - col_ready;
        AccessTiming {
            outcome,
            channel: coord.channel,
            data_start,
            data_end,
        }
    }

    /// Simulates a request stream.
    ///
    /// The stream is buffered and replayed through the streak-batched
    /// kernel, so bulk callers get the fast path automatically; results
    /// are bit-identical to calling [`DramSim::access`] per request.
    pub fn run<I: IntoIterator<Item = Request>>(&mut self, requests: I) {
        let buffer: Vec<Request> = requests.into_iter().collect();
        self.run_batch(&buffer);
    }

    /// Streak-batched replay of a request slice, bit-identical to calling
    /// [`DramSim::access`] on every element in order.
    ///
    /// The kernel exploits two structural facts:
    ///
    /// * **Channels are independent.** No state is shared between
    ///   channels, and every aggregate statistic is a commutative sum, so
    ///   requests to different channels can be timed in any order.
    /// * **Steady row hits are bus-rate.** After any access, the bank's
    ///   next column command plus CAS latency lands exactly when the bus
    ///   frees (`next_col + cas == bus_free`), so a following access to
    ///   the same bank, row, and direction starts its burst at
    ///   `bus_free` — no front-end arbitration can change that.
    ///
    /// Sequential streaks (64 B slots at consecutive addresses, the shape
    /// SCALE-Sim traces and scheme-rewritten tensor walks take) are
    /// detected up front and applied per channel in closed form: `n` row
    /// hits advance the bus by `n × t_bl` plus any refresh slips, which
    /// the kernel accounts in O(refresh windows crossed) rather than
    /// O(n). Anything that breaks the streak — a row change, a bank
    /// conflict, a read/write turnaround, a region boundary — falls back
    /// to the exact per-access kernel for that request.
    pub fn run_batch(&mut self, requests: &[Request]) {
        // The closed-form refresh walk assumes every issued burst leaves
        // its channel with phase >= tRFC, which the per-access check only
        // guarantees when the refresh window fits its interval. A
        // degenerate config (tRFC >= tREFI) replays per access instead.
        if self.config.t_refi > 0 && self.config.t_rfc >= self.config.t_refi {
            for &r in requests {
                self.access(r);
            }
            return;
        }
        // Per-channel steady-streak state, local to this call: the key of
        // the channel's most recent access. Local (not persisted) so that
        // interleaved `access()` calls can never leave a stale key behind.
        let mut streaks: Vec<Option<StreakKey>> = vec![None; self.clocks.len()];
        let region_bits = self.mapping.region_bits();
        let ch_bits = self.mapping.ch_bits();
        let channels = 1usize << ch_bits;

        let mut i = 0;
        while i < requests.len() {
            let head = requests[i];
            let head_block = AddressMapping::block_of(head.addr);

            // Detect a sequential streak: consecutive requests walking
            // consecutive 64 B slots in one direction, within one
            // super-row region (same (bank, rank, row) on every channel).
            let region_end = (head_block >> region_bits).wrapping_add(1) << region_bits;
            let max_len = (region_end - head_block).min((requests.len() - i) as u64) as usize;
            let mut len = 1;
            while len < max_len {
                let r = requests[i + len];
                if r.is_write != head.is_write
                    || AddressMapping::block_of(r.addr) != head_block + len as u64
                {
                    break;
                }
                len += 1;
            }

            if len > channels {
                // Heads: the first access per channel goes through the
                // normal path (it may hit, conflict, or open an empty
                // bank) and establishes the steady-streak invariant.
                for j in 0..channels {
                    self.step(requests[i + j], &mut streaks);
                }
                // Tail: channel of offset j is (head_block + j) mod
                // channels; each channel's remaining accesses are steady
                // row hits applied in closed form. Every block in the
                // region shares one within-channel bank index.
                let bank_in_channel = self.mapping.bank_index(head_block);
                let extra = len - channels;
                let per_channel = extra / channels;
                let remainder = extra % channels;
                for j in 0..channels {
                    let ch = ((head_block + j as u64) & (channels as u64 - 1)) as usize;
                    let n = per_channel + usize::from(j < remainder);
                    if n > 0 {
                        self.apply_streak(ch, bank_in_channel, n as u64, head.is_write);
                    }
                }
                i += len;
            } else {
                self.step(head, &mut streaks);
                i += 1;
            }
        }
    }

    /// One request through the batched kernel's scalar path: a steady
    /// same-(bank, row, direction) follow-up takes the closed-form row-hit
    /// step; anything else runs the exact per-access kernel.
    #[inline]
    fn step(&mut self, req: Request, streaks: &mut [Option<StreakKey>]) {
        let block = AddressMapping::block_of(req.addr);
        let ch = (block & (u64::from(self.mapping.channels()) - 1)) as usize;
        let key = StreakKey {
            bank: self.mapping.bank_index(block),
            row: self.mapping.row_of(block),
            is_write: req.is_write,
        };
        if streaks[ch] == Some(key) {
            self.apply_streak(ch, key.bank, 1, req.is_write);
        } else {
            let coord = self.mapping.decode(req.addr);
            let timing = self.access_decoded(req, coord);
            self.stats.record(req, timing.outcome);
            streaks[ch] = Some(key);
        }
    }

    /// Applies `n` steady row hits on channel `ch`'s most recent bank in
    /// closed form.
    ///
    /// Precondition (the steady-streak invariant): the channel's last
    /// access touched the same bank, row, and direction. The exact kernel
    /// then gives, for each of the `n` accesses,
    /// `col_ready = next_col` (the channel's arrival clock always trails
    /// `next_col`) and `col_ready + cas = bus_free`, so each burst starts
    /// at `bus_free` — advanced only by refresh slips. Every statistic
    /// the exact kernel would accumulate telescopes:
    ///
    /// * `data_start` advances by `t_bl` per access plus refresh slips,
    ///   walked period-by-period (O(windows crossed), not O(n));
    /// * each access's bank occupancy is `(Δdata_start) + cas + t_wr?`,
    ///   so the sum is `n (t_bl + cas + t_wr?) + slips`;
    /// * the channel arrival clock's running max is its final value.
    fn apply_streak(&mut self, ch: usize, bank_in_channel: usize, n: u64, is_write: bool) {
        let cfg = &self.config;
        let cas = if is_write { cfg.t_cwl } else { cfg.t_cl };
        let write_rec = if is_write { cfg.t_wr } else { 0 };
        let clock = &mut self.clocks[ch];
        // The previous access's burst start: its data_end is bus_free.
        let ds0 = clock.bus_free - cfg.t_bl;

        // Walk data_start forward n steps of t_bl, slipping past refresh
        // windows exactly as the per-access check would: one modulo test
        // per access, telescoped over whole tREFI periods.
        let (mut ds, mut slip) = (ds0, 0u64);
        let mut left = n;
        if cfg.t_refi == 0 || cfg.t_bl == 0 {
            // No refresh, or a zero-length burst whose phase never moves:
            // post-check phases equal the (checked) previous phase, so no
            // further slips are possible.
            ds += left * cfg.t_bl;
        } else {
            while left > 0 {
                // Steps whose tentative phase stays inside the current
                // period need no check outcome change: every issued
                // data_start has phase >= t_rfc, and phases only grow
                // until the period wraps.
                let phase = ds % cfg.t_refi;
                let safe = ((cfg.t_refi - 1 - phase) / cfg.t_bl).min(left);
                ds += safe * cfg.t_bl;
                left -= safe;
                if left > 0 {
                    // This access wraps into the next period: apply the
                    // exact kernel's single refresh check.
                    let mut next = ds + cfg.t_bl;
                    let phase = next % cfg.t_refi;
                    if phase < cfg.t_rfc {
                        slip += cfg.t_rfc - phase;
                        next += cfg.t_rfc - phase;
                    }
                    ds = next;
                    left -= 1;
                }
            }
        }

        // Telescoped state updates — each line is the exact kernel's
        // per-access update summed over the n accesses.
        self.stats.refresh_stall_cycles += slip;
        self.stats.bus_busy_cycles += n * cfg.t_bl;
        self.stats.row_hits += n;
        if is_write {
            self.stats.writes += n;
        } else {
            self.stats.reads += n;
        }
        clock.bus_free = ds + cfg.t_bl;
        clock.now = clock.now.max(ds.saturating_sub(cas + cfg.t_rcd));
        let bank = &mut self.banks[ch * self.banks_per_channel + bank_in_channel];
        bank.occupied += n * (cfg.t_bl + cas + write_rec) + slip;
        bank.next_col = ds - cas + cfg.t_bl;
        bank.busy_until = ds + cfg.t_bl + write_rec;
    }

    /// Total elapsed memory-controller cycles (the slowest channel's clock).
    pub fn elapsed_cycles(&self) -> u64 {
        self.clocks.iter().map(|c| c.bus_free).max().unwrap_or(0)
    }

    /// Elapsed time in seconds at the configured memory clock.
    pub fn elapsed_seconds(&self) -> f64 {
        self.config.cycles_to_seconds(self.elapsed_cycles())
    }

    /// Aggregate access statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Achieved bandwidth in bytes/second over the elapsed window.
    pub fn achieved_bandwidth(&self) -> f64 {
        let secs = self.elapsed_seconds();
        if secs == 0.0 {
            0.0
        } else {
            self.stats.bytes() as f64 / secs
        }
    }

    /// Cumulative occupied cycles of every bank, channel-major.
    pub fn bank_occupancy_cycles(&self) -> Vec<u64> {
        self.banks.iter().map(|b| b.occupied).collect()
    }

    /// Emits the simulator's cumulative activity to the global telemetry
    /// sink: access/row-outcome/refresh/bus counters plus one
    /// `dram.bank_occupancy_cycles` histogram sample per bank.
    ///
    /// Hot-path accounting lives in plain [`DramStats`] fields and the
    /// per-bank `occupied` tallies, so the per-access loop carries no
    /// telemetry dispatch; callers flush once per simulator lifetime
    /// (the pipeline kernel does so at the end of each run).
    pub fn emit_telemetry(&self) {
        if !seda_telemetry::enabled() {
            return;
        }
        self.emit_telemetry_to(&GlobalDispatch);
    }

    /// Emits the same metrics as [`DramSim::emit_telemetry`] into an
    /// explicit sink, bypassing the process-global dispatch. The
    /// `dram-batch` conformance family uses this to capture and compare
    /// the two replay kernels' telemetry snapshots in isolation.
    pub fn emit_telemetry_to(&self, sink: &dyn seda_telemetry::Sink) {
        let s = &self.stats;
        sink.add("dram.reads", s.reads);
        sink.add("dram.writes", s.writes);
        sink.add("dram.row_hits", s.row_hits);
        sink.add("dram.row_empties", s.row_empties);
        sink.add("dram.row_conflicts", s.row_conflicts);
        sink.add("dram.refresh_stall_cycles", s.refresh_stall_cycles);
        sink.add("dram.bus_busy_cycles", s.bus_busy_cycles);
        for occupied in self.bank_occupancy_cycles() {
            sink.record("dram.bank_occupancy_cycles", occupied);
        }
    }
}

/// Adapter routing [`seda_telemetry::Sink`] calls onto the process-global
/// dispatch functions, so the global and sink-directed emit paths share
/// one metric registry.
struct GlobalDispatch;

impl seda_telemetry::Sink for GlobalDispatch {
    fn add(&self, name: &'static str, delta: u64) {
        seda_telemetry::counter_add(name, delta);
    }

    fn record(&self, name: &'static str, value: u64) {
        seda_telemetry::record(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ACCESS_BYTES;

    fn sim() -> DramSim {
        DramSim::new(DramConfig::server())
    }

    #[test]
    fn sequential_stream_approaches_peak_bandwidth() {
        let mut s = sim();
        for i in 0..100_000u64 {
            s.access(Request::read(i * ACCESS_BYTES));
        }
        let eff = s.achieved_bandwidth() / s.config().peak_bandwidth();
        assert!(eff > 0.85, "streaming efficiency too low: {eff:.3}");
    }

    #[test]
    fn random_rows_are_much_slower() {
        let mut seq = sim();
        let mut rnd = sim();
        let n = 20_000u64;
        for i in 0..n {
            seq.access(Request::read(i * ACCESS_BYTES));
            // Jump a whole row per access within one bank's address space.
            let row_span = 8192 * 4; // row_bytes * channels
            rnd.access(Request::read((i * 7919) % 4096 * row_span));
        }
        assert!(
            rnd.elapsed_cycles() > 2 * seq.elapsed_cycles(),
            "row conflicts should cost: rnd={} seq={}",
            rnd.elapsed_cycles(),
            seq.elapsed_cycles()
        );
    }

    #[test]
    fn first_access_is_an_empty_row() {
        let mut s = sim();
        assert_eq!(s.access(Request::read(0)), RowOutcome::Empty);
        assert_eq!(s.access(Request::read(0)), RowOutcome::Hit);
    }

    #[test]
    fn conflict_detected_on_row_change() {
        let cfg = DramConfig::server();
        // Same channel, same bank, next row: skip over all columns, banks,
        // and ranks of the interleaving.
        let row_span = cfg.columns_per_row()
            * u64::from(cfg.channels)
            * u64::from(cfg.banks)
            * u64::from(cfg.ranks)
            * ACCESS_BYTES;
        let mut s = DramSim::new(cfg);
        s.access(Request::read(0));
        assert_eq!(s.access(Request::read(row_span)), RowOutcome::Conflict);
    }

    #[test]
    fn stats_count_reads_and_writes() {
        let mut s = sim();
        s.access(Request::read(0));
        s.access(Request::write(64));
        s.access(Request::write(128));
        assert_eq!(s.stats().reads, 1);
        assert_eq!(s.stats().writes, 2);
        assert_eq!(s.stats().bytes(), 3 * ACCESS_BYTES);
    }

    #[test]
    fn bus_and_bank_occupancy_accounting() {
        let mut s = sim();
        for i in 0..1000u64 {
            s.access(Request::read(i * ACCESS_BYTES));
        }
        let t_bl = s.config().t_bl;
        assert_eq!(s.stats().bus_busy_cycles, 1000 * t_bl);
        let occupied: u64 = s.bank_occupancy_cycles().iter().sum();
        assert!(
            occupied >= 1000 * t_bl,
            "each access occupies a bank for at least its burst: {occupied}"
        );
    }

    #[test]
    fn elapsed_cycles_monotone() {
        let mut s = sim();
        let mut last = 0;
        for i in 0..100 {
            s.access(Request::read(i * 64));
            let e = s.elapsed_cycles();
            assert!(e >= last);
            last = e;
        }
    }

    #[test]
    fn channels_share_load_for_striped_streams() {
        let mut s = sim();
        for i in 0..4096u64 {
            s.access(Request::read(i * ACCESS_BYTES));
        }
        // A striped stream of N accesses at 4 channels and tBL=4 should take
        // roughly N/4 * tBL cycles, far below serial N * tBL.
        let cycles = s.elapsed_cycles();
        assert!(cycles < 4096 * 4 / 2, "no channel parallelism: {cycles}");
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::config::ACCESS_BYTES;

    /// Replays `stream` through both kernels and asserts every observable
    /// is bit-identical.
    fn assert_conformant(cfg: DramConfig, stream: &[Request]) {
        let mut exact = DramSim::new(cfg.clone());
        for &r in stream {
            exact.access(r);
        }
        let mut batched = DramSim::new(cfg);
        batched.run_batch(stream);
        assert_eq!(exact.stats(), batched.stats(), "stats diverged");
        assert_eq!(
            exact.elapsed_cycles(),
            batched.elapsed_cycles(),
            "elapsed cycles diverged"
        );
        assert_eq!(
            exact.bank_occupancy_cycles(),
            batched.bank_occupancy_cycles(),
            "bank occupancy diverged"
        );
    }

    #[test]
    fn streaming_run_is_bit_identical() {
        let stream: Vec<Request> = (0..50_000u64)
            .map(|i| Request::read(i * ACCESS_BYTES))
            .collect();
        assert_conformant(DramConfig::server(), &stream);
    }

    #[test]
    fn streaming_writes_are_bit_identical() {
        let stream: Vec<Request> = (0..20_000u64)
            .map(|i| Request::write(i * ACCESS_BYTES))
            .collect();
        assert_conformant(DramConfig::edge(), &stream);
    }

    #[test]
    fn direction_turnarounds_are_bit_identical() {
        let stream: Vec<Request> = (0..10_000u64)
            .map(|i| {
                if (i / 100) % 2 == 0 {
                    Request::read(i * ACCESS_BYTES)
                } else {
                    Request::write(i * ACCESS_BYTES)
                }
            })
            .collect();
        assert_conformant(DramConfig::server(), &stream);
    }

    #[test]
    fn row_thrash_is_bit_identical() {
        let cfg = DramConfig::server();
        let row_span = cfg.row_bytes * u64::from(cfg.channels);
        let stream: Vec<Request> = (0..5_000u64)
            .map(|i| Request::read((i * 7919) % 512 * row_span))
            .collect();
        assert_conformant(cfg, &stream);
    }

    #[test]
    fn same_slot_repeats_are_bit_identical() {
        let stream: Vec<Request> = (0..5_000u64).map(|_| Request::read(4096)).collect();
        assert_conformant(DramConfig::edge(), &stream);
    }

    #[test]
    fn streaks_crossing_refresh_windows_are_bit_identical() {
        // A long uninterrupted stream crosses many tREFI periods, so the
        // closed-form slip walk gets exercised hard.
        let stream: Vec<Request> = (0..400_000u64)
            .map(|i| Request::read(i * ACCESS_BYTES))
            .collect();
        let cfg = DramConfig::server();
        assert!(cfg.t_refi > 0);
        assert_conformant(cfg, &stream);
    }

    #[test]
    fn single_channel_config_is_bit_identical() {
        let cfg = DramConfig::ddr4_with_bandwidth(1, 5.0e9);
        let stream: Vec<Request> = (0..30_000u64)
            .map(|i| Request::read(i * ACCESS_BYTES))
            .collect();
        assert_conformant(cfg, &stream);
    }

    #[test]
    fn run_uses_the_batched_kernel() {
        let mut a = DramSim::new(DramConfig::server());
        a.run((0..10_000u64).map(|i| Request::read(i * ACCESS_BYTES)));
        let mut b = DramSim::new(DramConfig::server());
        for i in 0..10_000u64 {
            b.access(Request::read(i * ACCESS_BYTES));
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.elapsed_cycles(), b.elapsed_cycles());
    }

    #[test]
    fn batch_state_carries_across_calls() {
        // Splitting one stream across run_batch calls must equal one call:
        // bank/bus state persists, only the local streak keys reset.
        let stream: Vec<Request> = (0..8_192u64)
            .map(|i| Request::read(i * ACCESS_BYTES))
            .collect();
        let mut whole = DramSim::new(DramConfig::server());
        whole.run_batch(&stream);
        let mut split = DramSim::new(DramConfig::server());
        for chunk in stream.chunks(1000) {
            split.run_batch(chunk);
        }
        assert_eq!(whole.stats(), split.stats());
        assert_eq!(whole.elapsed_cycles(), split.elapsed_cycles());
        assert_eq!(whole.bank_occupancy_cycles(), split.bank_occupancy_cycles());
    }
}

#[cfg(test)]
mod refresh_tests {
    use super::*;
    use crate::config::ACCESS_BYTES;

    #[test]
    fn refresh_steals_a_bounded_fraction_of_bandwidth() {
        let cfg = DramConfig::server();
        let mut with = DramSim::new(cfg.clone());
        let mut without = DramSim::new(DramConfig { t_refi: 0, ..cfg });
        for i in 0..2_000_000u64 {
            with.access(Request::read(i * ACCESS_BYTES));
            without.access(Request::read(i * ACCESS_BYTES));
        }
        let ratio = with.elapsed_cycles() as f64 / without.elapsed_cycles() as f64;
        assert!(ratio > 1.0, "refresh must cost something: {ratio}");
        // tRFC/tREFI = 350ns/7.8us ≈ 4.5%.
        assert!(ratio < 1.08, "refresh overhead too large: {ratio}");
        assert!(with.stats().refresh_stall_cycles > 0, "stalls are counted");
        assert_eq!(without.stats().refresh_stall_cycles, 0);
    }

    #[test]
    fn no_transfer_lands_inside_a_refresh_window() {
        // Regression: this test used to reconstruct the transfer start as
        // `elapsed - 4` with a hard-coded burst length, so any change to
        // the config's t_bl silently invalidated the invariant. The timed
        // access API reports the actual window, and the burst length is
        // checked against the config rather than assumed.
        let cfg = DramConfig::server();
        let (refi, rfc, t_bl) = (cfg.t_refi, cfg.t_rfc, cfg.t_bl);
        assert!(refi > rfc && rfc > 0);
        let mut sim = DramSim::new(cfg);
        for i in 0..100_000u64 {
            let t = sim.access_timed(Request::read(i * ACCESS_BYTES));
            assert_eq!(t.data_end - t.data_start, t_bl, "burst length from config");
            // The data burst must start at or after the end of any refresh
            // window [k*tREFI, k*tREFI + tRFC).
            assert!(
                t.data_start % refi >= rfc,
                "transfer started inside refresh at {}",
                t.data_start
            );
        }
    }
}
