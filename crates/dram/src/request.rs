//! Memory request and row-buffer outcome types.

use crate::config::ACCESS_BYTES;
use serde::{Deserialize, Serialize};

/// A single 64 B DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    /// Byte address (aligned down to the 64 B slot internally).
    pub addr: u64,
    /// Whether this access is a write.
    pub is_write: bool,
}

impl Request {
    /// A read of the 64 B slot containing `addr`.
    pub fn read(addr: u64) -> Self {
        Self {
            addr,
            is_write: false,
        }
    }

    /// A write of the 64 B slot containing `addr`.
    pub fn write(addr: u64) -> Self {
        Self {
            addr,
            is_write: true,
        }
    }

    /// Packs the request into one word: the 64 B block index in the high
    /// bits, the direction in bit 0 (`(block << 1) | is_write`).
    ///
    /// The simulator is block-granular throughout — every timing and
    /// statistics decision depends only on `addr / 64` and the direction —
    /// so the packed form carries everything replay needs at half the
    /// storage of a [`Request`]. Bulk paths (the pipeline's lowered
    /// traces, the replay benchmarks) store streams packed for exactly
    /// that reason: lowering writes, and replay reads, half the bytes.
    ///
    /// The encoding never overflows (a byte address has at least six zero
    /// high bits once shifted to a block index), and no packed value is
    /// `u64::MAX`, which the batched kernel exploits as a sentinel.
    #[inline]
    pub fn pack(self) -> u64 {
        crate::mapping::AddressMapping::block_of(self.addr) << 1 | u64::from(self.is_write)
    }

    /// Inverse of [`Request::pack`], up to 64 B alignment: the returned
    /// address is the base of the packed request's block, which the
    /// simulator treats identically to any other byte of the block.
    #[inline]
    pub fn unpack(packed: u64) -> Self {
        Self {
            addr: (packed >> 1) * ACCESS_BYTES,
            is_write: packed & 1 != 0,
        }
    }
}

/// Row-buffer outcome of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowOutcome {
    /// The bank already had the target row open.
    Hit,
    /// The bank was precharged; only an activate was needed.
    Empty,
    /// A different row was open; precharge + activate required.
    Conflict,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_direction() {
        assert!(!Request::read(0).is_write);
        assert!(Request::write(0).is_write);
    }

    #[test]
    fn pack_round_trips_aligned_requests() {
        for addr in [0u64, 64, 4096, (1 << 42) + 128, u64::MAX - 63] {
            for req in [Request::read(addr), Request::write(addr)] {
                assert_eq!(Request::unpack(req.pack()), req);
            }
        }
    }

    #[test]
    fn pack_aligns_down_within_the_block() {
        assert_eq!(Request::read(100).pack(), Request::read(64).pack());
        assert_eq!(
            Request::unpack(Request::write(100).pack()),
            Request::write(64)
        );
    }

    #[test]
    fn packed_values_never_hit_the_sentinel() {
        // Top of the address space, written: the largest possible packed
        // value still leaves sentinel headroom.
        assert!(Request::write(u64::MAX).pack() < u64::MAX);
    }
}
