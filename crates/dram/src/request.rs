//! Memory request and row-buffer outcome types.

use serde::{Deserialize, Serialize};

/// A single 64 B DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    /// Byte address (aligned down to the 64 B slot internally).
    pub addr: u64,
    /// Whether this access is a write.
    pub is_write: bool,
}

impl Request {
    /// A read of the 64 B slot containing `addr`.
    pub fn read(addr: u64) -> Self {
        Self {
            addr,
            is_write: false,
        }
    }

    /// A write of the 64 B slot containing `addr`.
    pub fn write(addr: u64) -> Self {
        Self {
            addr,
            is_write: true,
        }
    }
}

/// Row-buffer outcome of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowOutcome {
    /// The bank already had the target row open.
    Hit,
    /// The bank was precharged; only an activate was needed.
    Empty,
    /// A different row was open; precharge + activate required.
    Conflict,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_direction() {
        assert!(!Request::read(0).is_write);
        assert!(Request::write(0).is_write);
    }
}
