//! A DDR4-style DRAM timing simulator in the spirit of Ramulator 2.0,
//! sized for the SeDA evaluation's trace volumes.
//!
//! The simulator models channels, ranks, banks, and open-row state with an
//! in-order per-channel front end and bank-level parallelism. It answers
//! the question the memory-protection study needs answered: *how many
//! memory-clock cycles does this request stream take*, with row-locality
//! effects included, so that security metadata accesses (which break
//! streaming locality) are charged realistically.
//!
//! # Examples
//!
//! ```
//! use seda_dram::{DramConfig, DramSim, Request};
//!
//! let mut sim = DramSim::new(DramConfig::server());
//! sim.run((0..256u64).map(|i| Request::read(i * 64)));
//! println!(
//!     "{} accesses in {} cycles ({:.1}% row hits)",
//!     sim.stats().accesses(),
//!     sim.elapsed_cycles(),
//!     sim.stats().hit_rate() * 100.0
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cmdsim;
pub mod config;
pub mod controller;
pub mod energy;
pub mod mapping;
pub mod request;
pub mod stats;

pub use cmdsim::{simulate_commands, CommandStats};
pub use config::{DramConfig, ACCESS_BYTES};
pub use controller::{AccessTiming, DramSim};
pub use energy::{estimate as estimate_energy, EnergyEstimate, EnergyParams};
pub use mapping::{AddressMapping, DramCoord};
pub use request::{Request, RowOutcome};
pub use stats::DramStats;
