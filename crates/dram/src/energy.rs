//! DRAM energy model.
//!
//! An extension beyond the paper's figures: protection metadata costs not
//! just time but DRAM energy (extra activates for scattered metadata rows,
//! extra bursts for MAC/VN lines). The model uses DDR4-class per-operation
//! energies so scheme comparisons can be made in millijoules as well as
//! cycles; constants follow the widely used DRAMPower/Micron datasheet
//! methodology at 1.2 V.

use crate::stats::DramStats;
use serde::{Deserialize, Serialize};

/// Per-operation DRAM energies in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Energy of one activate+precharge pair (row open/close).
    pub act_pre_pj: f64,
    /// Energy of one 64 B read burst (column access + I/O).
    pub read_pj: f64,
    /// Energy of one 64 B write burst.
    pub write_pj: f64,
    /// Background power in milliwatts (standby + refresh), charged per
    /// second of elapsed time.
    pub background_mw: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::ddr4()
    }
}

impl EnergyParams {
    /// DDR4-2400-class energies (x64 channel, 1.2 V).
    pub fn ddr4() -> Self {
        Self {
            act_pre_pj: 1700.0,
            read_pj: 2100.0,
            write_pj: 2300.0,
            background_mw: 110.0,
        }
    }

    /// LPDDR4-class energies for the edge NPU (lower I/O swing).
    pub fn lpddr4() -> Self {
        Self {
            act_pre_pj: 900.0,
            read_pj: 1100.0,
            write_pj: 1250.0,
            background_mw: 45.0,
        }
    }
}

/// An energy estimate decomposed by source.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyEstimate {
    /// Activate/precharge energy in millijoules.
    pub activate_mj: f64,
    /// Read burst energy in millijoules.
    pub read_mj: f64,
    /// Write burst energy in millijoules.
    pub write_mj: f64,
    /// Background (standby + refresh) energy in millijoules.
    pub background_mj: f64,
}

impl EnergyEstimate {
    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.activate_mj + self.read_mj + self.write_mj + self.background_mj
    }
}

/// Estimates the energy of a simulated access stream.
///
/// `elapsed_seconds` should come from [`crate::DramSim::elapsed_seconds`];
/// activations are the non-hit accesses (empty + conflict outcomes both
/// open a row; conflicts additionally precharged one, folded into the
/// act/pre pair energy).
pub fn estimate(params: &EnergyParams, stats: &DramStats, elapsed_seconds: f64) -> EnergyEstimate {
    let activations = stats.row_empties + stats.row_conflicts;
    EnergyEstimate {
        activate_mj: activations as f64 * params.act_pre_pj * 1e-9,
        read_mj: stats.reads as f64 * params.read_pj * 1e-9,
        write_mj: stats.writes as f64 * params.write_pj * 1e-9,
        background_mj: params.background_mw * elapsed_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DramConfig, DramSim, Request, ACCESS_BYTES};

    #[test]
    fn streaming_energy_is_read_dominated() {
        let mut sim = DramSim::new(DramConfig::server());
        for i in 0..100_000u64 {
            sim.access(Request::read(i * ACCESS_BYTES));
        }
        let e = estimate(&EnergyParams::ddr4(), sim.stats(), sim.elapsed_seconds());
        assert!(e.read_mj > e.activate_mj, "streaming rarely activates");
        assert!(e.total_mj() > 0.0);
    }

    #[test]
    fn row_thrashing_inflates_activate_energy() {
        let cfg = DramConfig::server();
        let row_span =
            cfg.columns_per_row() * u64::from(cfg.channels) * u64::from(cfg.banks) * ACCESS_BYTES;
        let mut seq = DramSim::new(cfg.clone());
        let mut rnd = DramSim::new(cfg);
        for i in 0..20_000u64 {
            seq.access(Request::read(i * ACCESS_BYTES));
            rnd.access(Request::read((i % 997) * row_span + (i * 64) % 4096));
        }
        let p = EnergyParams::ddr4();
        let e_seq = estimate(&p, seq.stats(), seq.elapsed_seconds());
        let e_rnd = estimate(&p, rnd.stats(), rnd.elapsed_seconds());
        assert!(e_rnd.activate_mj > 10.0 * e_seq.activate_mj);
    }

    #[test]
    fn lpddr4_is_cheaper_than_ddr4() {
        let mut sim = DramSim::new(DramConfig::edge());
        for i in 0..10_000u64 {
            sim.access(Request::write(i * ACCESS_BYTES));
        }
        let secs = sim.elapsed_seconds();
        let ddr = estimate(&EnergyParams::ddr4(), sim.stats(), secs);
        let lp = estimate(&EnergyParams::lpddr4(), sim.stats(), secs);
        assert!(lp.total_mj() < ddr.total_mj());
    }

    #[test]
    fn empty_stream_costs_only_background() {
        let e = estimate(&EnergyParams::ddr4(), &DramStats::default(), 1.0e-3);
        assert_eq!(e.activate_mj + e.read_mj + e.write_mj, 0.0);
        assert!((e.background_mj - 0.11).abs() < 1e-9);
    }
}
