//! Property-based tests for the DRAM simulator.

use proptest::prelude::*;
use seda_dram::{AddressMapping, DramConfig, DramSim, Request, ACCESS_BYTES};

fn configs() -> Vec<DramConfig> {
    vec![DramConfig::server(), DramConfig::edge()]
}

/// The pre-rewrite div/mod decode, kept here as an independent oracle for
/// the bit-sliced [`AddressMapping::decode`]. The interleave order is
/// channel : column : bank : rank : row from the least-significant block
/// digit upward, expressed with `%` and `/` so no shift/mask logic is
/// shared with the implementation under test.
fn divmod_decode(cfg: &DramConfig, addr: u64) -> (u32, u32, u32, u64, u64) {
    let block = addr / ACCESS_BYTES;
    let channel = (block % u64::from(cfg.channels)) as u32;
    let rest = block / u64::from(cfg.channels);
    let column = rest % cfg.columns_per_row();
    let rest = rest / cfg.columns_per_row();
    let bank = (rest % u64::from(cfg.banks)) as u32;
    let rest = rest / u64::from(cfg.banks);
    let rank = (rest % u64::from(cfg.ranks)) as u32;
    let row = rest / u64::from(cfg.ranks);
    (channel, rank, bank, row, column)
}

/// A power-of-two organization from raw exponents (the randomized-config
/// axis of the mapping properties).
fn config_from_bits(ch_bits: u32, rank_bits: u32, bank_bits: u32, row_exp: u32) -> DramConfig {
    let mut cfg = DramConfig::ddr4_with_bandwidth(1 << ch_bits, 16.0e9);
    cfg.ranks = 1 << rank_bits;
    cfg.banks = 1 << bank_bits;
    cfg.row_bytes = 1 << row_exp;
    cfg
}

/// Addresses that sit on (and straddle) every field boundary of the
/// decoded coordinate: 64 B slot edges, each power of two through the
/// 2^42 range the sweep address space uses and on up to 2^63 (so the
/// packed-request block field, `addr >> 6`, crosses every one of its 58
/// bit positions), plus the very top of the address space — the region
/// where the pre-fix streak-scan region arithmetic used to overflow.
fn boundary_addresses() -> Vec<u64> {
    let mut addrs = vec![0, 1, 63, 64, 65, 127, 128];
    for exp in 7..=63u32 {
        let base = 1u64 << exp;
        for delta in [-64i64, -1, 0, 1, 64] {
            addrs.push(base.wrapping_add_signed(delta));
        }
    }
    for delta in [0u64, 1, 63, 64, 65, 128] {
        addrs.push(u64::MAX - delta);
    }
    addrs
}

#[test]
fn bit_sliced_decode_matches_divmod_oracle_on_boundaries() {
    let mut all = configs();
    for (ch, rk, bk, row) in [(0, 0, 2, 10), (1, 1, 3, 7), (2, 0, 4, 13), (3, 1, 2, 11)] {
        all.push(config_from_bits(ch, rk, bk, row));
    }
    for cfg in all {
        let m = AddressMapping::new(&cfg);
        for addr in boundary_addresses() {
            let c = m.decode(addr);
            let expect = divmod_decode(&cfg, addr);
            assert_eq!(
                (c.channel, c.rank, c.bank, c.row, c.column),
                expect,
                "divmod oracle disagrees at addr {addr:#x} \
                 (channels={} ranks={} banks={} row_bytes={})",
                cfg.channels,
                cfg.ranks,
                cfg.banks,
                cfg.row_bytes
            );
            assert_eq!(m.encode(c), addr / ACCESS_BYTES * ACCESS_BYTES);
        }
    }
}

proptest! {
    #[test]
    fn mapping_is_a_bijection_on_slots(addr in 0u64..(1 << 42)) {
        for cfg in configs() {
            let m = AddressMapping::new(&cfg);
            let coord = m.decode(addr);
            prop_assert_eq!(m.encode(coord), addr / ACCESS_BYTES * ACCESS_BYTES);
        }
    }

    #[test]
    fn bit_sliced_decode_matches_divmod_oracle(
        addr in 0u64..(1 << 42),
        ch_bits in 0u32..4,
        rank_bits in 0u32..2,
        bank_bits in 2u32..5,
        row_exp in 7u32..14,
    ) {
        let cfg = config_from_bits(ch_bits, rank_bits, bank_bits, row_exp);
        let m = AddressMapping::new(&cfg);
        let c = m.decode(addr);
        prop_assert_eq!((c.channel, c.rank, c.bank, c.row, c.column), divmod_decode(&cfg, addr));
        prop_assert_eq!(m.encode(c), addr / ACCESS_BYTES * ACCESS_BYTES);
    }

    #[test]
    fn decode_matches_oracle_across_the_full_address_space(addr in any::<u64>()) {
        for cfg in configs() {
            let m = AddressMapping::new(&cfg);
            let c = m.decode(addr);
            prop_assert_eq!((c.channel, c.rank, c.bank, c.row, c.column), divmod_decode(&cfg, addr));
            prop_assert_eq!(m.encode(c), addr / ACCESS_BYTES * ACCESS_BYTES);
        }
    }

    #[test]
    fn batched_replay_matches_exact_near_the_address_space_top(
        offsets in prop::collection::vec((0u64..4096, any::<bool>()), 1..120),
    ) {
        // Streams pinned just below u64::MAX: the region where the
        // streak scan's region-end arithmetic used to wrap to zero.
        let base = u64::MAX - (1 << 20);
        let stream: Vec<Request> = offsets
            .iter()
            .map(|&(o, w)| Request { addr: base + o * ACCESS_BYTES, is_write: w })
            .collect();
        let mut exact = DramSim::new(DramConfig::server());
        for r in &stream {
            exact.access(*r);
        }
        let mut batched = DramSim::new(DramConfig::server());
        batched.run_batch(&stream);
        prop_assert_eq!(exact.stats(), batched.stats());
        prop_assert_eq!(exact.elapsed_cycles(), batched.elapsed_cycles());
        prop_assert_eq!(exact.bank_occupancy_cycles(), batched.bank_occupancy_cycles());
    }

    #[test]
    fn distinct_slots_decode_distinctly(a in 0u64..(1 << 30), b in 0u64..(1 << 30)) {
        prop_assume!(a / ACCESS_BYTES != b / ACCESS_BYTES);
        let m = AddressMapping::new(&DramConfig::server());
        prop_assert_ne!(m.decode(a), m.decode(b));
    }

    #[test]
    fn elapsed_time_is_monotone(addrs in prop::collection::vec((0u64..(1 << 28), any::<bool>()), 1..200)) {
        let mut sim = DramSim::new(DramConfig::edge());
        let mut last = 0;
        for (addr, is_write) in addrs {
            sim.access(Request { addr, is_write });
            let now = sim.elapsed_cycles();
            prop_assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn every_access_is_counted(addrs in prop::collection::vec((0u64..(1 << 28), any::<bool>()), 0..200)) {
        let mut sim = DramSim::new(DramConfig::server());
        let (mut reads, mut writes) = (0u64, 0u64);
        for (addr, is_write) in addrs {
            sim.access(Request { addr, is_write });
            if is_write { writes += 1 } else { reads += 1 }
        }
        prop_assert_eq!(sim.stats().reads, reads);
        prop_assert_eq!(sim.stats().writes, writes);
        let s = sim.stats();
        prop_assert_eq!(s.row_hits + s.row_empties + s.row_conflicts, reads + writes);
    }

    #[test]
    fn bandwidth_never_exceeds_peak(addrs in prop::collection::vec(0u64..(1 << 28), 50..400)) {
        let mut sim = DramSim::new(DramConfig::server());
        for addr in addrs {
            sim.access(Request::read(addr));
        }
        prop_assert!(sim.achieved_bandwidth() <= sim.config().peak_bandwidth() * 1.0001);
    }

    #[test]
    fn repeating_one_slot_always_hits_after_first(addr in 0u64..(1 << 28), n in 2usize..50) {
        let mut sim = DramSim::new(DramConfig::edge());
        sim.access(Request::read(addr));
        for _ in 1..n {
            let outcome = sim.access(Request::read(addr));
            prop_assert_eq!(outcome, seda_dram::RowOutcome::Hit);
        }
    }

    #[test]
    fn simulation_is_deterministic(addrs in prop::collection::vec((0u64..(1 << 28), any::<bool>()), 1..150)) {
        let run = || {
            let mut sim = DramSim::new(DramConfig::server());
            for (addr, is_write) in &addrs {
                sim.access(Request { addr: *addr, is_write: *is_write });
            }
            (sim.elapsed_cycles(), *sim.stats())
        };
        prop_assert_eq!(run(), run());
    }
}
