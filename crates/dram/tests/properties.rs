//! Property-based tests for the DRAM simulator.

use proptest::prelude::*;
use seda_dram::{AddressMapping, DramConfig, DramSim, Request, ACCESS_BYTES};

fn configs() -> Vec<DramConfig> {
    vec![DramConfig::server(), DramConfig::edge()]
}

proptest! {
    #[test]
    fn mapping_is_a_bijection_on_slots(addr in 0u64..(1 << 42)) {
        for cfg in configs() {
            let m = AddressMapping::new(&cfg);
            let coord = m.decode(addr);
            prop_assert_eq!(m.encode(coord), addr / ACCESS_BYTES * ACCESS_BYTES);
        }
    }

    #[test]
    fn distinct_slots_decode_distinctly(a in 0u64..(1 << 30), b in 0u64..(1 << 30)) {
        prop_assume!(a / ACCESS_BYTES != b / ACCESS_BYTES);
        let m = AddressMapping::new(&DramConfig::server());
        prop_assert_ne!(m.decode(a), m.decode(b));
    }

    #[test]
    fn elapsed_time_is_monotone(addrs in prop::collection::vec((0u64..(1 << 28), any::<bool>()), 1..200)) {
        let mut sim = DramSim::new(DramConfig::edge());
        let mut last = 0;
        for (addr, is_write) in addrs {
            sim.access(Request { addr, is_write });
            let now = sim.elapsed_cycles();
            prop_assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn every_access_is_counted(addrs in prop::collection::vec((0u64..(1 << 28), any::<bool>()), 0..200)) {
        let mut sim = DramSim::new(DramConfig::server());
        let (mut reads, mut writes) = (0u64, 0u64);
        for (addr, is_write) in addrs {
            sim.access(Request { addr, is_write });
            if is_write { writes += 1 } else { reads += 1 }
        }
        prop_assert_eq!(sim.stats().reads, reads);
        prop_assert_eq!(sim.stats().writes, writes);
        let s = sim.stats();
        prop_assert_eq!(s.row_hits + s.row_empties + s.row_conflicts, reads + writes);
    }

    #[test]
    fn bandwidth_never_exceeds_peak(addrs in prop::collection::vec(0u64..(1 << 28), 50..400)) {
        let mut sim = DramSim::new(DramConfig::server());
        for addr in addrs {
            sim.access(Request::read(addr));
        }
        prop_assert!(sim.achieved_bandwidth() <= sim.config().peak_bandwidth() * 1.0001);
    }

    #[test]
    fn repeating_one_slot_always_hits_after_first(addr in 0u64..(1 << 28), n in 2usize..50) {
        let mut sim = DramSim::new(DramConfig::edge());
        sim.access(Request::read(addr));
        for _ in 1..n {
            let outcome = sim.access(Request::read(addr));
            prop_assert_eq!(outcome, seda_dram::RowOutcome::Hit);
        }
    }

    #[test]
    fn simulation_is_deterministic(addrs in prop::collection::vec((0u64..(1 << 28), any::<bool>()), 1..150)) {
        let run = || {
            let mut sim = DramSim::new(DramConfig::server());
            for (addr, is_write) in &addrs {
                sim.access(Request { addr: *addr, is_write: *is_write });
            }
            (sim.elapsed_cycles(), *sim.stats())
        };
        prop_assert_eq!(run(), run());
    }
}
