//! Adversarial and resumption properties of the sealed-model stream.
//!
//! Two satellite guarantees live here:
//!
//! * **Every-offset detection** — flipping one bit at *any* byte offset
//!   of a sealed stream (header, frame metadata, ciphertext, or MAC)
//!   yields a typed [`SedaError`], never a panic and never a silent
//!   accept. Mirrors the adversary crate's every-offset bit-flip test.
//! * **Torn-stream resumption** — a stream split at any byte (block
//!   boundaries included) resumes cleanly from the last verified block,
//!   and a truncated stream reports exactly how far verification got.

use proptest::prelude::*;
use seda::error::StreamViolation;
use seda::SedaError;
use seda_adversary::ProtectConfig;
use seda_stream::{header_len, seal, unseal, StreamSpec, StreamUnsealer, FRAME_BYTES};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn small_spec() -> StreamSpec {
    StreamSpec {
        stream_id: 0x51D,
        key_epoch: 1,
        config: ProtectConfig::matrix()[2],
        lens: vec![128, 64],
        enc_key: [11; 16],
        mac_key: [12; 16],
        transport_key: [13; 16],
    }
}

fn small_plains(spec: &StreamSpec) -> Vec<Vec<u8>> {
    spec.lens
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            (0..len)
                .map(|j| (j as u8).wrapping_mul(7) ^ (i as u8 + 1))
                .collect()
        })
        .collect()
}

/// Satellite property: a single bit flip at every byte offset of a
/// small sealed stream — header bytes included — must surface as a
/// typed error from the unsealer. No blind spots, no panics.
#[test]
fn every_byte_offset_bitflip_is_detected_with_a_typed_error() {
    let spec = small_spec();
    let plains = small_plains(&spec);
    let sealed = seal(&spec, &plains).expect("seal");
    assert_eq!(sealed.len(), header_len(2) + 3 * FRAME_BYTES);
    for offset in 0..sealed.len() {
        let mut tampered = sealed.clone();
        tampered.flip_bit(offset, (offset % 8) as u8);
        let outcome = catch_unwind(AssertUnwindSafe(|| unseal(&spec, tampered.bytes())));
        let result = outcome.unwrap_or_else(|_| panic!("unseal panicked at offset {offset}"));
        let err = result.err().unwrap_or_else(|| {
            panic!("bit flip at offset {offset} was silently accepted");
        });
        assert!(
            matches!(err, SedaError::Tag(_) | SedaError::Stream(_)),
            "offset {offset}: unexpected error class {err:?}"
        );
    }
}

/// Truncating at *exact frame boundaries* must report the verified
/// count precisely — every fully delivered frame counts, nothing more.
#[test]
fn truncation_at_each_frame_boundary_reports_exact_progress() {
    let spec = small_spec();
    let sealed = seal(&spec, &small_plains(&spec)).expect("seal");
    let frames = sealed.frame_count();
    for keep in 0..frames {
        let cut = sealed.header_len() + keep * FRAME_BYTES;
        let err = unseal(&spec, &sealed.bytes()[..cut]).expect_err("truncated stream");
        assert_eq!(
            err,
            SedaError::Stream(StreamViolation::Truncated {
                verified: keep as u64,
                expected: frames as u64,
            }),
            "cut after {keep} frames"
        );
    }
}

proptest! {
    /// A stream torn at any byte offset resumes cleanly: pushing the
    /// two halves separately verifies the same image as one shot.
    #[test]
    fn torn_stream_resumes_from_the_last_verified_block(tear in 0usize..305) {
        let spec = small_spec();
        let plains = small_plains(&spec);
        let sealed = seal(&spec, &plains).expect("seal");
        prop_assert_eq!(sealed.len(), 304);
        let (head, tail) = sealed.bytes().split_at(tear);
        let mut u = StreamUnsealer::new(spec.clone()).expect("unsealer");
        u.push(head).expect("head verifies");
        // Progress so far is exactly the fully delivered frames.
        let delivered = tear.saturating_sub(sealed.header_len()) / FRAME_BYTES;
        prop_assert_eq!(u.verified_blocks(), delivered as u64);
        u.push(tail).expect("tail resumes");
        prop_assert!(u.is_complete());
        let resumed = u.finish().expect("finish");
        let one_shot = unseal(&spec, sealed.bytes()).expect("one-shot");
        prop_assert_eq!(resumed.offchip_bytes(), one_shot.offchip_bytes());
        prop_assert_eq!(resumed.model_root(), one_shot.model_root());
    }

    /// Arbitrary truncation (not just frame boundaries) is always a
    /// typed `Truncated` carrying the floor of fully verified frames.
    #[test]
    fn arbitrary_truncation_is_typed(cut in 0usize..304) {
        let spec = small_spec();
        let sealed = seal(&spec, &small_plains(&spec)).expect("seal");
        prop_assume!(cut < sealed.len());
        let err = unseal(&spec, &sealed.bytes()[..cut]).expect_err("incomplete stream");
        let verified = cut.saturating_sub(sealed.header_len()) / FRAME_BYTES;
        prop_assert_eq!(err, SedaError::Stream(StreamViolation::Truncated {
            verified: verified as u64,
            expected: sealed.frame_count() as u64,
        }));
    }

    /// Feeding the stream in arbitrary chunk sizes never changes the
    /// outcome — the unsealer's buffering is size-agnostic.
    #[test]
    fn chunk_size_does_not_affect_the_unseal(chunk in 1usize..97) {
        let spec = small_spec();
        let sealed = seal(&spec, &small_plains(&spec)).expect("seal");
        let mut u = StreamUnsealer::new(spec.clone()).expect("unsealer");
        for piece in sealed.bytes().chunks(chunk) {
            u.push(piece).expect("chunked push");
        }
        let chunked = u.finish().expect("finish");
        let one_shot = unseal(&spec, sealed.bytes()).expect("one-shot");
        prop_assert_eq!(chunked.offchip_bytes(), one_shot.offchip_bytes());
    }
}
