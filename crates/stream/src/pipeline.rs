//! The provisioning fast path: overlap transport crypto with DRAM
//! replay.
//!
//! Unsealing a stream has two stages with independent resources: the
//! chained-MAC verification plus pad removal (crypto engines), and the
//! write-out of each verified layer to off-chip memory (the DRAM
//! channel, modeled by [`DramSim`]'s packed batch replay). The
//! [`unseal_pipelined`] path runs them as a two-stage pipeline with a
//! depth-2 channel — double buffering — so layer `k`'s replay overlaps
//! layer `k+1`'s verification, exactly the overlap a provisioning DMA
//! engine would give. [`unseal_serial`] is the crypto-then-replay
//! baseline the overlap-efficiency metric compares against.

use crate::seal::StreamSpec;
use crate::unseal::StreamUnsealer;
use seda::SedaError;
use seda_adversary::{ProtectedImage, BLOCK};
use seda_dram::{DramConfig, DramSim, Request};
use std::sync::mpsc;
use std::time::Instant;

/// Stream bytes handed to the unsealer per push — a line-rate NIC
/// burst's worth of frames.
pub const CHUNK_BYTES: usize = 4096;

/// A completed pipelined unseal with its throughput measurements.
#[derive(Debug)]
pub struct UnsealRun {
    /// The verified, installed image.
    pub image: ProtectedImage,
    /// Ciphertext payload bytes provisioned.
    pub payload_bytes: u64,
    /// Protection blocks verified.
    pub blocks: u64,
    /// Wall-clock seconds of the pipelined unseal.
    pub pipelined_s: f64,
    /// Wall-clock seconds of the serial crypto-then-replay baseline.
    pub serial_s: f64,
    /// Sustained payload throughput of the pipelined path in GB/s.
    pub gbps_sustained: f64,
    /// Serial over pipelined wall time: above 1.0 means the overlap
    /// paid for itself.
    pub overlap_efficiency: f64,
    /// DRAM memory-clock cycles the replay consumed.
    pub replay_cycles: u64,
}

/// Packed 64-byte write requests covering one layer region.
fn layer_writes(pa0: u64, len: usize) -> Vec<u64> {
    (0..len / BLOCK)
        .map(|i| Request::write(pa0 + (i * BLOCK) as u64).pack())
        .collect()
}

/// Unseals a stream with crypto and DRAM replay overlapped.
///
/// The caller's thread verifies frames and installs layers; a replay
/// thread drains verified layers through [`DramSim::run_batch_packed`]
/// behind a depth-2 channel. The *result* is bit-identical to
/// [`unseal_serial`] and to a one-shot [`crate::unseal()`] — threading
/// affects wall-clock only.
///
/// # Errors
///
/// Propagates every unsealer violation (see [`StreamUnsealer`]).
pub fn unseal_pipelined(
    spec: &StreamSpec,
    stream: &[u8],
    dram: DramConfig,
) -> Result<(ProtectedImage, u64, f64), SedaError> {
    let started = Instant::now();
    let pas = spec.layer_pas();
    let lens = spec.lens.clone();
    let (result, cycles) = std::thread::scope(|scope| {
        let (tx, rx) = mpsc::sync_channel::<(u64, usize)>(2);
        let replay = scope.spawn(move || {
            let mut sim = DramSim::new(dram);
            while let Ok((pa0, len)) = rx.recv() {
                sim.run_batch_packed(&layer_writes(pa0, len));
            }
            sim.elapsed_cycles()
        });
        let fed = (|| {
            let mut unsealer = StreamUnsealer::new(spec.clone())?;
            let mut sent = 0usize;
            for chunk in stream.chunks(CHUNK_BYTES) {
                unsealer.push(chunk)?;
                while sent < unsealer.layers_installed() {
                    // A full channel here *is* the double buffer: crypto
                    // stalls only when two layers are already in flight.
                    tx.send((pas[sent], lens[sent]))
                        .expect("replay stage outlives the feed");
                    sent += 1;
                }
            }
            unsealer.finish()
        })();
        drop(tx);
        let cycles = replay.join().expect("replay stage does not panic");
        (fed, cycles)
    });
    let image = result?;
    Ok((image, cycles, started.elapsed().as_secs_f64()))
}

/// The serial baseline: verify the whole stream, then replay every
/// layer's write-out back to back.
///
/// # Errors
///
/// Propagates every unsealer violation (see [`StreamUnsealer`]).
pub fn unseal_serial(
    spec: &StreamSpec,
    stream: &[u8],
    dram: DramConfig,
) -> Result<(ProtectedImage, u64, f64), SedaError> {
    let started = Instant::now();
    let mut unsealer = StreamUnsealer::new(spec.clone())?;
    for chunk in stream.chunks(CHUNK_BYTES) {
        unsealer.push(chunk)?;
    }
    let image = unsealer.finish()?;
    let mut sim = DramSim::new(dram);
    for (layer, &len) in spec.lens.iter().enumerate() {
        sim.run_batch_packed(&layer_writes(spec.layer_pas()[layer], len));
    }
    Ok((image, sim.elapsed_cycles(), started.elapsed().as_secs_f64()))
}

/// Runs both paths over the same stream and summarizes throughput.
///
/// # Errors
///
/// Propagates every unsealer violation (see [`StreamUnsealer`]).
pub fn measure(
    spec: &StreamSpec,
    stream: &[u8],
    dram: &DramConfig,
) -> Result<UnsealRun, SedaError> {
    let (image, replay_cycles, pipelined_s) = unseal_pipelined(spec, stream, dram.clone())?;
    let (serial_image, serial_cycles, serial_s) = unseal_serial(spec, stream, dram.clone())?;
    debug_assert_eq!(image.offchip_bytes(), serial_image.offchip_bytes());
    debug_assert_eq!(replay_cycles, serial_cycles);
    let payload_bytes = spec.total_bytes() as u64;
    seda_telemetry::counter_add("stream.pipelined_unseals", 1);
    Ok(UnsealRun {
        image,
        payload_bytes,
        blocks: spec.total_blocks(),
        pipelined_s,
        serial_s,
        gbps_sustained: payload_bytes as f64 / pipelined_s.max(1e-9) / 1e9,
        overlap_efficiency: serial_s / pipelined_s.max(1e-9),
        replay_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seal::seal;
    use seda_adversary::ProtectConfig;

    fn spec() -> StreamSpec {
        StreamSpec {
            stream_id: 42,
            key_epoch: 1,
            config: ProtectConfig::matrix()[2],
            lens: vec![1024, 512, 2048],
            enc_key: [4; 16],
            mac_key: [5; 16],
            transport_key: [6; 16],
        }
    }

    fn dram() -> DramConfig {
        DramConfig::ddr4_with_bandwidth(1, 16.0e9)
    }

    #[test]
    fn pipelined_and_serial_agree_bit_for_bit() {
        let sp = spec();
        let plains: Vec<Vec<u8>> = sp
            .lens
            .iter()
            .enumerate()
            .map(|(i, &len)| vec![i as u8 + 1; len])
            .collect();
        let stream = seal(&sp, &plains).expect("seal");
        let run = measure(&sp, stream.bytes(), &dram()).expect("measure");
        assert_eq!(run.blocks, (1024 + 512 + 2048) / 64);
        assert_eq!(run.payload_bytes, 1024 + 512 + 2048);
        assert!(run.gbps_sustained > 0.0);
        assert!(run.replay_cycles > 0);
        let (serial, _, _) = unseal_serial(&sp, stream.bytes(), dram()).expect("serial");
        assert_eq!(run.image.offchip_bytes(), serial.offchip_bytes());
        assert_eq!(run.image.model_root(), serial.model_root());
        assert_eq!(
            run.image.read_model().expect("verifies"),
            plains,
            "pipelined unseal round-trips the plaintext"
        );
    }

    #[test]
    fn pipelined_path_propagates_tamper_errors() {
        let sp = spec();
        let plains: Vec<Vec<u8>> = sp.lens.iter().map(|&len| vec![7u8; len]).collect();
        let mut stream = seal(&sp, &plains).expect("seal");
        stream.flip_bit(stream.frame_offset(10) + 20, 3);
        let err = unseal_pipelined(&sp, stream.bytes(), dram()).expect_err("tamper detected");
        assert!(matches!(err, SedaError::Tag(_)), "{err:?}");
    }
}
