//! The sealing side: turn plaintext layers into an authenticated stream.

use crate::frame::{encode_frame, encode_header, frame_mac, FRAME_BYTES};
use seda::SedaError;
use seda_adversary::{PadGen, ProtectConfig, BLOCK};
use seda_crypto::ctr::CounterSeed;
use seda_crypto::mac::PositionBoundMac;
use seda_crypto::otp::{BandwidthAwareOtp, OtpStrategy, SharedOtp};

/// Everything both ends of a provisioning stream agree on out of band:
/// identity, key material, and the sealed model's geometry.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Stream identity, bound into every transport MAC.
    pub stream_id: u64,
    /// Key epoch; the unsealer rejects any other epoch as stale.
    pub key_epoch: u64,
    /// The protection configuration the image is sealed under.
    pub config: ProtectConfig,
    /// Layer region lengths in bytes (positive multiples of 64).
    pub lens: Vec<usize>,
    /// AES-CTR encryption key (the at-rest pad key).
    pub enc_key: [u8; 16],
    /// Storage MAC key for the installed [`ProtectedImage`].
    ///
    /// [`ProtectedImage`]: seda_adversary::ProtectedImage
    pub mac_key: [u8; 16],
    /// Long-lived transport MAC key (independent of the model key epoch).
    pub transport_key: [u8; 16],
}

impl StreamSpec {
    /// Total payload bytes across all layer regions.
    pub fn total_bytes(&self) -> usize {
        self.lens.iter().sum()
    }

    /// Total protection blocks across all layer regions.
    pub fn total_blocks(&self) -> u64 {
        (self.total_bytes() / BLOCK) as u64
    }

    /// Base physical address of each layer region (contiguous packing,
    /// matching [`ProtectedImage`] layout).
    ///
    /// [`ProtectedImage`]: seda_adversary::ProtectedImage
    pub fn layer_pas(&self) -> Vec<u64> {
        let mut pas = Vec::with_capacity(self.lens.len());
        let mut next = 0u64;
        for &len in &self.lens {
            pas.push(next);
            next += len as u64;
        }
        pas
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SedaError::InvalidSpec`] for an empty lineup, a region
    /// that is not a positive multiple of 64, or too many layers.
    pub fn validate(&self) -> Result<(), SedaError> {
        if self.lens.is_empty() {
            return Err(SedaError::InvalidSpec {
                reason: "stream needs at least one layer region".to_owned(),
            });
        }
        if self.lens.len() > crate::frame::MAX_LAYERS {
            return Err(SedaError::InvalidSpec {
                reason: format!(
                    "{} layers exceed the {} layer framing ceiling",
                    self.lens.len(),
                    crate::frame::MAX_LAYERS
                ),
            });
        }
        if let Some(bad) = self.lens.iter().find(|&&l| l == 0 || l % BLOCK != 0) {
            return Err(SedaError::InvalidSpec {
                reason: format!("layer length {bad} is not a positive multiple of {BLOCK}"),
            });
        }
        Ok(())
    }

    pub(crate) fn pads(&self) -> PadEngine {
        match self.config.pad {
            PadGen::Shared => PadEngine::Shared(SharedOtp::new(self.enc_key)),
            PadGen::BAes => PadEngine::BAes(BandwidthAwareOtp::new(self.enc_key)),
        }
    }
}

/// Pad generator dispatch mirroring the at-rest image's.
#[derive(Debug, Clone)]
pub(crate) enum PadEngine {
    Shared(SharedOtp),
    BAes(BandwidthAwareOtp),
}

impl PadEngine {
    pub(crate) fn apply(&self, seed: CounterSeed, data: &mut [u8]) {
        match self {
            PadEngine::Shared(p) => p.apply(seed, data),
            PadEngine::BAes(p) => p.apply(seed, data),
        }
    }
}

/// Region lengths for a model's sealed image: one region per layer, the
/// layer's weight footprint clamped into `[64, 4096]` and rounded up to
/// the 64-byte protection block — the geometry `seda-serve` seals
/// tenants under.
pub fn model_lens(model: &seda_models::Model) -> Vec<usize> {
    model
        .layers()
        .iter()
        .map(|l| {
            let bytes = l.filter_bytes().clamp(64, 4096);
            (bytes.div_ceil(64) * 64) as usize
        })
        .collect()
}

/// A sealed provisioning stream, with frame-aware tamper helpers for the
/// adversarial validation family.
#[derive(Debug, Clone)]
pub struct SealedStream {
    bytes: Vec<u8>,
    header_len: usize,
    frames: usize,
}

impl SealedStream {
    /// The raw stream bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the stream into its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Total stream length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the stream is empty (it never is after a seal).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Header length in bytes.
    pub fn header_len(&self) -> usize {
        self.header_len
    }

    /// Number of block frames.
    pub fn frame_count(&self) -> usize {
        self.frames
    }

    /// Byte offset of frame `i`.
    pub fn frame_offset(&self, i: usize) -> usize {
        self.header_len + i * FRAME_BYTES
    }

    /// Flips bit `bit` of stream byte `offset` (wrapping both).
    pub fn flip_bit(&mut self, offset: usize, bit: u8) {
        let at = offset % self.bytes.len();
        self.bytes[at] ^= 1 << (bit % 8);
    }

    /// Flips one bit of frame `i`'s transport MAC.
    pub fn corrupt_frame_mac(&mut self, i: usize, bit: u8) {
        let at = self.frame_offset(i % self.frames) + FRAME_BYTES - 8 + ((bit % 64) / 8) as usize;
        self.bytes[at] ^= 1 << (bit % 8);
    }

    /// Swaps frames `a` and `b` wholesale (metadata, ciphertext, MAC).
    pub fn swap_frames(&mut self, a: usize, b: usize) {
        let (a, b) = (a % self.frames, b % self.frames);
        if a == b {
            return;
        }
        let (oa, ob) = (self.frame_offset(a), self.frame_offset(b));
        for i in 0..FRAME_BYTES {
            self.bytes.swap(oa + i, ob + i);
        }
    }

    /// Replaces frame `i` with the same-index frame of `other` — the
    /// cross-stream splice move.
    pub fn splice_frame_from(&mut self, other: &SealedStream, i: usize) {
        let i = i % self.frames.min(other.frames);
        let (to, from) = (self.frame_offset(i), other.frame_offset(i));
        self.bytes[to..to + FRAME_BYTES].copy_from_slice(&other.bytes[from..from + FRAME_BYTES]);
    }
}

/// Seals plaintext layers into an authenticated provisioning stream.
///
/// Ciphertext is produced exactly as the at-rest image would (AES-CTR
/// pads seeded by `(pa, vn=1)`), so the unsealed image is bit-identical
/// to sealing the same plaintext through `write_layer` on a fresh image.
///
/// # Errors
///
/// Returns [`SedaError::InvalidSpec`] when the geometry is invalid or
/// `layers` does not match it.
pub fn seal(spec: &StreamSpec, layers: &[Vec<u8>]) -> Result<SealedStream, SedaError> {
    spec.validate()?;
    if layers.len() != spec.lens.len() {
        return Err(SedaError::InvalidSpec {
            reason: format!(
                "stream declares {} layer regions, got {} payloads",
                spec.lens.len(),
                layers.len()
            ),
        });
    }
    for (layer, (plain, &len)) in layers.iter().zip(spec.lens.iter()).enumerate() {
        if plain.len() != len {
            return Err(SedaError::InvalidSpec {
                reason: format!("layer {layer} holds {len} bytes, got {}", plain.len()),
            });
        }
    }
    let transport = PositionBoundMac::new(spec.transport_key);
    let pads = spec.pads();
    let pas = spec.layer_pas();
    let blocks_per_layer: Vec<u32> = spec.lens.iter().map(|&l| (l / BLOCK) as u32).collect();
    let mut bytes = encode_header(
        &transport,
        spec.stream_id,
        spec.key_epoch,
        &blocks_per_layer,
    );
    let hlen = bytes.len();
    // The chain starts at the header MAC, so frame 0 also authenticates
    // the header it follows.
    let mut chain = crate::frame::header_mac(
        &transport,
        spec.stream_id,
        spec.key_epoch,
        &bytes[..hlen - 8],
    );
    let mut seq = 0u64;
    for (layer, plain) in layers.iter().enumerate() {
        for (blk, chunk) in plain.chunks(BLOCK).enumerate() {
            let pa = pas[layer] + (blk * BLOCK) as u64;
            let mut ct = chunk.to_vec();
            pads.apply(CounterSeed::new(pa, 1), &mut ct);
            let mac = frame_mac(
                &transport,
                spec.stream_id,
                seq,
                layer as u32,
                blk as u32,
                &ct,
                chain,
            );
            bytes.extend_from_slice(&encode_frame(seq, layer as u32, blk as u32, &ct, mac));
            chain = mac;
            seq += 1;
        }
    }
    seda_telemetry::counter_add("stream.blocks_sealed", seq);
    Ok(SealedStream {
        bytes,
        header_len: hlen,
        frames: seq as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::header_len;
    use seda_models::zoo;

    fn spec() -> StreamSpec {
        StreamSpec {
            stream_id: 11,
            key_epoch: 1,
            config: ProtectConfig::matrix()[2],
            lens: vec![128, 64],
            enc_key: [1; 16],
            mac_key: [2; 16],
            transport_key: [3; 16],
        }
    }

    #[test]
    fn seal_rejects_bad_geometry_with_typed_errors() {
        let mut sp = spec();
        sp.lens = vec![];
        assert!(matches!(seal(&sp, &[]), Err(SedaError::InvalidSpec { .. })));
        let mut sp = spec();
        sp.lens = vec![100];
        assert!(matches!(
            seal(&sp, &[vec![0; 100]]),
            Err(SedaError::InvalidSpec { .. })
        ));
        let sp = spec();
        assert!(matches!(
            seal(&sp, &[vec![0; 128]]),
            Err(SedaError::InvalidSpec { .. })
        ));
        assert!(matches!(
            seal(&sp, &[vec![0; 128], vec![0; 32]]),
            Err(SedaError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn stream_geometry_matches_the_framing_math() {
        let sp = spec();
        let s = seal(&sp, &[vec![7; 128], vec![9; 64]]).expect("seal");
        assert_eq!(s.frame_count(), 3);
        assert_eq!(s.header_len(), header_len(2));
        assert_eq!(s.len(), header_len(2) + 3 * FRAME_BYTES);
        assert!(!s.is_empty());
        assert_eq!(s.frame_offset(2), s.header_len() + 2 * FRAME_BYTES);
    }

    #[test]
    fn model_lens_are_block_aligned_and_bounded() {
        for model in zoo::all_models() {
            let lens = model_lens(&model);
            assert_eq!(lens.len(), model.layers().len(), "{}", model.name());
            for len in lens {
                assert!((64..=4096 + 63).contains(&len), "{len}");
                assert_eq!(len % 64, 0);
            }
        }
    }
}
