//! The consuming side: an incremental, verify-before-trust unsealer.

use crate::frame::{
    be32, be64, frame_mac, header_len, header_mac, FRAME_BYTES, HEADER_PREFIX, MAGIC, MAX_LAYERS,
};
use crate::seal::StreamSpec;
use seda::error::StreamViolation;
use seda::SedaError;
use seda_adversary::{ProtectedImage, BLOCK};
use seda_crypto::mac::{MacTag, PositionBoundMac};

/// Incremental sealed-stream consumer.
///
/// Feed arbitrary byte chunks through [`push`](Self::push); the unsealer
/// buffers partial frames, verifies each complete frame's chained
/// transport MAC before trusting any of it, and installs each completed
/// layer into the [`ProtectedImage`] under construction. Every failure
/// is a typed [`SedaError`]; after one, the unsealer is poisoned and
/// repeats it. A *torn* stream is not a failure: state persists across
/// pushes, so resuming with the remaining bytes continues cleanly from
/// the last verified block, and [`finish`](Self::finish) reports
/// [`StreamViolation::Truncated`] only if the stream never completes.
#[derive(Debug)]
pub struct StreamUnsealer {
    spec: StreamSpec,
    transport: PositionBoundMac,
    buf: Vec<u8>,
    pos: usize,
    header_done: bool,
    image: ProtectedImage,
    chain: MacTag,
    next_seq: u64,
    total_blocks: u64,
    verified: u64,
    layer_buf: Vec<u8>,
    current_layer: usize,
    next_blk: u32,
    layers_installed: usize,
    blocks_per_layer: Vec<u32>,
    failed: Option<SedaError>,
}

impl StreamUnsealer {
    /// Creates an unsealer expecting `spec`'s stream identity, key
    /// epoch, and geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SedaError::InvalidSpec`] for invalid geometry.
    pub fn new(spec: StreamSpec) -> Result<Self, SedaError> {
        spec.validate()?;
        let image = ProtectedImage::new(spec.config, &spec.lens, spec.enc_key, spec.mac_key)?;
        let blocks_per_layer: Vec<u32> = spec.lens.iter().map(|&l| (l / BLOCK) as u32).collect();
        let total_blocks = spec.total_blocks();
        Ok(Self {
            transport: PositionBoundMac::new(spec.transport_key),
            buf: Vec::new(),
            pos: 0,
            header_done: false,
            image,
            chain: MacTag(0),
            next_seq: 0,
            total_blocks,
            verified: 0,
            layer_buf: Vec::new(),
            current_layer: 0,
            next_blk: 0,
            layers_installed: 0,
            blocks_per_layer,
            failed: None,
            spec,
        })
    }

    /// Blocks verified so far.
    pub fn verified_blocks(&self) -> u64 {
        self.verified
    }

    /// Blocks the geometry declares.
    pub fn expected_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Layers fully verified and installed so far.
    pub fn layers_installed(&self) -> usize {
        self.layers_installed
    }

    /// Whether every declared block has been verified and installed.
    pub fn is_complete(&self) -> bool {
        self.verified == self.total_blocks
    }

    /// Feeds the next chunk of the stream, verifying as many complete
    /// frames as it holds.
    ///
    /// # Errors
    ///
    /// Any framing, ordering, or MAC violation — see the crate docs for
    /// the full taxonomy. The unsealer stays poisoned with the first
    /// error.
    pub fn push(&mut self, data: &[u8]) -> Result<(), SedaError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        self.buf.extend_from_slice(data);
        let result = self.drain();
        if let Err(e) = &result {
            self.failed = Some(e.clone());
        }
        // Reclaim consumed bytes so a long stream never grows the buffer.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        result
    }

    /// Completes the unseal, yielding the installed image.
    ///
    /// # Errors
    ///
    /// Repeats any earlier violation; an incomplete stream yields
    /// [`StreamViolation::Truncated`] with the verified progress.
    pub fn finish(self) -> Result<ProtectedImage, SedaError> {
        if let Some(e) = self.failed {
            return Err(e);
        }
        if !self.is_complete() {
            return Err(StreamViolation::Truncated {
                verified: self.verified,
                expected: self.total_blocks,
            }
            .into());
        }
        seda_telemetry::counter_add("stream.unseals_completed", 1);
        Ok(self.image)
    }

    fn available(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn drain(&mut self) -> Result<(), SedaError> {
        if !self.header_done && !self.try_header()? {
            return Ok(());
        }
        while self.try_frame()? {}
        Ok(())
    }

    /// Attempts to parse and verify the header; `Ok(false)` means more
    /// bytes are needed.
    fn try_header(&mut self) -> Result<bool, SedaError> {
        if self.available() < HEADER_PREFIX {
            return Ok(false);
        }
        let at = self.pos;
        if self.buf[at..at + 4] != MAGIC {
            return Err(StreamViolation::BadHeader {
                reason: format!(
                    "bad magic {:02x}{:02x}{:02x}{:02x}",
                    self.buf[at],
                    self.buf[at + 1],
                    self.buf[at + 2],
                    self.buf[at + 3]
                ),
            }
            .into());
        }
        let layer_count = be32(&self.buf, at + 20) as usize;
        if layer_count == 0 || layer_count > MAX_LAYERS {
            return Err(StreamViolation::BadHeader {
                reason: format!("layer count {layer_count} outside 1..={MAX_LAYERS}"),
            }
            .into());
        }
        let hlen = header_len(layer_count);
        if self.available() < hlen {
            return Ok(false);
        }
        let stream_id = be64(&self.buf, at + 4);
        let key_epoch = be64(&self.buf, at + 12);
        // Authenticate before interpreting: the MAC covers every header
        // field, so any flipped byte surfaces as a tag mismatch here.
        let stored = MacTag(be64(&self.buf, at + hlen - 8));
        let computed = header_mac(
            &self.transport,
            stream_id,
            key_epoch,
            &self.buf[at..at + hlen - 8],
        );
        computed.verify(stored).map_err(SedaError::from)?;
        if stream_id != self.spec.stream_id {
            return Err(StreamViolation::BadHeader {
                reason: format!(
                    "stream id {stream_id:#x}, expected {:#x}",
                    self.spec.stream_id
                ),
            }
            .into());
        }
        if key_epoch != self.spec.key_epoch {
            return Err(StreamViolation::StaleEpoch {
                stream: key_epoch,
                current: self.spec.key_epoch,
            }
            .into());
        }
        if layer_count != self.spec.lens.len() {
            return Err(StreamViolation::BadHeader {
                reason: format!(
                    "{layer_count} layer regions declared, expected {}",
                    self.spec.lens.len()
                ),
            }
            .into());
        }
        for (layer, &expected) in self.blocks_per_layer.iter().enumerate() {
            let declared = be32(&self.buf, at + HEADER_PREFIX + 4 * layer);
            if declared != expected {
                return Err(StreamViolation::BadHeader {
                    reason: format!(
                        "layer {layer} declares {declared} blocks, expected {expected}"
                    ),
                }
                .into());
            }
        }
        self.chain = computed;
        self.pos += hlen;
        self.header_done = true;
        Ok(true)
    }

    /// Attempts to verify one frame; `Ok(false)` means more bytes are
    /// needed.
    fn try_frame(&mut self) -> Result<bool, SedaError> {
        if self.is_complete() {
            if self.available() > 0 {
                return Err(StreamViolation::BadFrame {
                    seq: self.next_seq,
                    reason: format!("{} trailing bytes after the final frame", self.available()),
                }
                .into());
            }
            return Ok(false);
        }
        if self.available() < FRAME_BYTES {
            return Ok(false);
        }
        let at = self.pos;
        let seq = be64(&self.buf, at);
        if seq != self.next_seq {
            return Err(StreamViolation::OutOfOrder {
                expected: self.next_seq,
                got: seq,
            }
            .into());
        }
        let layer = be32(&self.buf, at + 8);
        let blk = be32(&self.buf, at + 12);
        if layer as usize != self.current_layer || blk != self.next_blk {
            return Err(StreamViolation::BadFrame {
                seq,
                reason: format!(
                    "declared position (layer {layer}, blk {blk}), expected (layer {}, blk {})",
                    self.current_layer, self.next_blk
                ),
            }
            .into());
        }
        let ct = &self.buf[at + 16..at + 16 + BLOCK];
        let stored = MacTag(be64(&self.buf, at + 16 + BLOCK));
        let computed = frame_mac(
            &self.transport,
            self.spec.stream_id,
            seq,
            layer,
            blk,
            ct,
            self.chain,
        );
        computed.verify(stored).map_err(SedaError::from)?;
        self.layer_buf.extend_from_slice(ct);
        self.chain = computed;
        self.next_seq += 1;
        self.verified += 1;
        self.next_blk += 1;
        if self.next_blk == self.blocks_per_layer[self.current_layer] {
            let layer_ct = std::mem::take(&mut self.layer_buf);
            self.image
                .install_sealed_layer(self.current_layer, &layer_ct)?;
            self.layers_installed += 1;
            self.current_layer += 1;
            self.next_blk = 0;
        }
        self.pos += FRAME_BYTES;
        Ok(true)
    }
}

/// One-shot unseal of a complete stream.
///
/// # Errors
///
/// Same taxonomy as [`StreamUnsealer::push`] / [`StreamUnsealer::finish`].
pub fn unseal(spec: &StreamSpec, stream: &[u8]) -> Result<ProtectedImage, SedaError> {
    let mut unsealer = StreamUnsealer::new(spec.clone())?;
    unsealer.push(stream)?;
    unsealer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seal::seal;
    use seda_adversary::ProtectConfig;

    fn spec() -> StreamSpec {
        StreamSpec {
            stream_id: 0xFEED,
            key_epoch: 1,
            config: ProtectConfig::matrix()[2],
            lens: vec![128, 64],
            enc_key: [1; 16],
            mac_key: [2; 16],
            transport_key: [3; 16],
        }
    }

    fn plains() -> Vec<Vec<u8>> {
        vec![vec![0x11; 128], vec![0x22; 64]]
    }

    #[test]
    fn byte_at_a_time_push_matches_one_shot() {
        let sp = spec();
        let stream = seal(&sp, &plains()).expect("seal");
        let one_shot = unseal(&sp, stream.bytes()).expect("one-shot");
        let mut dribble = StreamUnsealer::new(sp.clone()).expect("unsealer");
        for &b in stream.bytes() {
            dribble.push(&[b]).expect("dribbled push");
        }
        assert!(dribble.is_complete());
        assert_eq!(dribble.layers_installed(), 2);
        let dribbled = dribble.finish().expect("finish");
        assert_eq!(one_shot.offchip_bytes(), dribbled.offchip_bytes());
        assert_eq!(one_shot.model_root(), dribbled.model_root());
    }

    #[test]
    fn poisoned_unsealer_repeats_its_error() {
        let sp = spec();
        let mut stream = seal(&sp, &plains()).expect("seal");
        stream.corrupt_frame_mac(0, 5);
        let mut u = StreamUnsealer::new(sp).expect("unsealer");
        let first = u.push(stream.bytes()).expect_err("tamper detected");
        assert!(matches!(first, SedaError::Tag(_)), "{first:?}");
        let again = u.push(&[0]).expect_err("still poisoned");
        assert_eq!(first, again);
        assert_eq!(u.verified_blocks(), 0);
        let fin = u.finish().expect_err("finish repeats the error");
        assert_eq!(fin, first);
    }

    #[test]
    fn wrong_stream_id_and_trailing_garbage_are_typed() {
        let sp = spec();
        let stream = seal(&sp, &plains()).expect("seal");
        let mut other = sp.clone();
        other.stream_id = 0xBEEF;
        let err = unseal(&other, stream.bytes()).expect_err("stream id pinned");
        assert!(
            matches!(err, SedaError::Stream(StreamViolation::BadHeader { .. })),
            "{err:?}"
        );
        let mut long = stream.bytes().to_vec();
        long.push(0xAB);
        let err = unseal(&sp, &long).expect_err("trailing bytes rejected");
        assert!(
            matches!(err, SedaError::Stream(StreamViolation::BadFrame { .. })),
            "{err:?}"
        );
    }
}
