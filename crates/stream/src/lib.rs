//! Line-rate sealed-model provisioning for the SeDA stack.
//!
//! SeDA seals models *at rest* ([`seda_adversary::ProtectedImage`]); this
//! crate seals them *in flight*. A sealed model is emitted as a compact
//! header plus sequence-numbered authenticated 64-byte blocks — AES-CTR
//! ciphertext (identical to the at-rest encryption, so a streamed image
//! is bit-identical to an at-rest sealing of the same plaintext) framed
//! with a per-block transport MAC chained over `(stream id, seq,
//! layer id)`. The consumer is an incremental unsealer that verifies
//! every frame before trusting a byte of it, installs completed layers
//! through [`ProtectedImage::install_sealed_layer`], and degrades every
//! tamper class into a typed [`seda::SedaError`] — never a panic:
//!
//! * bit flips anywhere (header, frame metadata, ciphertext, MAC) →
//!   [`SedaError::Tag`] / [`StreamViolation`] variants,
//! * frame reorder or cross-stream splice → `OutOfOrder` / `Tag`,
//! * truncation → `Truncated` carrying how far verification got,
//! * replay of a stream sealed under a retired key epoch → `StaleEpoch`.
//!
//! A torn stream is resumable: the unsealer holds its chain state, so
//! pushing the remaining bytes continues cleanly from the last verified
//! block.
//!
//! [`pipeline::unseal_pipelined`] is the provisioning fast path: a
//! double-buffered two-stage pipeline overlapping transport crypto with
//! packed DRAM replay ([`seda_dram::DramSim::run_batch_packed`]) of each
//! verified layer's write-out, reporting sustained GB/s and the overlap
//! efficiency against a serial crypto-then-replay baseline
//! (`stream_bench` pins both in `BENCH_stream.json`).
//!
//! [`SedaError::Tag`]: seda::SedaError::Tag
//! [`StreamViolation`]: seda::error::StreamViolation
//! [`ProtectedImage::install_sealed_layer`]:
//!     seda_adversary::ProtectedImage::install_sealed_layer

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod pipeline;
pub mod seal;
pub mod unseal;

pub use frame::{header_len, FRAME_BYTES, MAGIC, MAX_LAYERS};
pub use pipeline::{measure, unseal_pipelined, unseal_serial, UnsealRun, CHUNK_BYTES};
pub use seal::{model_lens, seal, SealedStream, StreamSpec};
pub use unseal::{unseal, StreamUnsealer};

#[cfg(test)]
mod tests {
    use super::*;
    use seda::error::StreamViolation;
    use seda::SedaError;
    use seda_adversary::ProtectConfig;
    use seda_models::zoo;

    fn spec(lens: &[usize]) -> StreamSpec {
        StreamSpec {
            stream_id: 0x5EDA_0001,
            key_epoch: 1,
            config: ProtectConfig::matrix()[2],
            lens: lens.to_vec(),
            enc_key: [7; 16],
            mac_key: [8; 16],
            transport_key: [9; 16],
        }
    }

    fn payloads(lens: &[usize], salt: u8) -> Vec<Vec<u8>> {
        lens.iter()
            .map(|&len| {
                (0..len)
                    .map(|i| (i as u8).wrapping_mul(13) ^ salt)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn streamed_unseal_matches_at_rest_sealing_on_every_zoo_model() {
        // The acceptance headline: for every zoo model, a sealed stream
        // unseals into an image bit-identical to sealing the same
        // plaintext at rest through `write_layer`.
        for model in zoo::all_models() {
            let lens = model_lens(&model);
            let sp = spec(&lens);
            let plains = payloads(&lens, model.name().len() as u8);
            let stream = seal(&sp, &plains).expect("seal");
            let streamed = unseal(&sp, stream.bytes()).expect("unseal");
            let mut at_rest =
                seda_adversary::ProtectedImage::new(sp.config, &sp.lens, sp.enc_key, sp.mac_key)
                    .expect("image");
            for (layer, plain) in plains.iter().enumerate() {
                at_rest.write_layer(layer, plain).expect("write");
            }
            assert_eq!(
                streamed.offchip_bytes(),
                at_rest.offchip_bytes(),
                "{} ciphertext differs",
                model.name()
            );
            assert_eq!(
                streamed.model_root(),
                at_rest.model_root(),
                "{} root differs",
                model.name()
            );
            assert_eq!(
                streamed.read_model().expect("streamed verifies"),
                plains,
                "{} plaintext differs",
                model.name()
            );
        }
    }

    #[test]
    fn stale_epoch_replay_is_rejected_after_rotation() {
        let lens = [128usize, 64];
        let old = spec(&lens);
        let stream = seal(&old, &payloads(&lens, 1)).expect("seal");
        // The receiver rotated to epoch 2; the epoch-1 stream replays.
        let mut rotated = old.clone();
        rotated.key_epoch = 2;
        let err = unseal(&rotated, stream.bytes()).expect_err("stale stream");
        assert_eq!(
            err,
            SedaError::Stream(StreamViolation::StaleEpoch {
                stream: 1,
                current: 2
            })
        );
    }

    #[test]
    fn cross_stream_splice_is_rejected() {
        let lens = [128usize, 64];
        let sp = spec(&lens);
        let mut other = sp.clone();
        other.stream_id = 0x5EDA_0002;
        let a = seal(&sp, &payloads(&lens, 1)).expect("seal a");
        let b = seal(&other, &payloads(&lens, 2)).expect("seal b");
        // Splice a frame from stream B into stream A at the same seq:
        // the transport MAC binds the stream id, so it cannot verify.
        let mut spliced = a.clone();
        spliced.splice_frame_from(&b, 1);
        let err = unseal(&sp, spliced.bytes()).expect_err("splice detected");
        assert!(matches!(err, SedaError::Tag(_)), "{err:?}");
    }

    #[test]
    fn reordered_frames_are_rejected_in_order() {
        let lens = [256usize];
        let sp = spec(&lens);
        let mut stream = seal(&sp, &payloads(&lens, 3)).expect("seal");
        stream.swap_frames(1, 2);
        let err = unseal(&sp, stream.bytes()).expect_err("reorder detected");
        assert_eq!(
            err,
            SedaError::Stream(StreamViolation::OutOfOrder {
                expected: 1,
                got: 2
            })
        );
    }

    #[test]
    fn truncation_reports_verified_progress() {
        let lens = [128usize, 128];
        let sp = spec(&lens);
        let stream = seal(&sp, &payloads(&lens, 4)).expect("seal");
        // Keep the header and the first frame plus half of the second.
        let keep = header_len(lens.len()) + FRAME_BYTES + FRAME_BYTES / 2;
        let err = unseal(&sp, &stream.bytes()[..keep]).expect_err("torn stream");
        assert_eq!(
            err,
            SedaError::Stream(StreamViolation::Truncated {
                verified: 1,
                expected: 4
            })
        );
    }
}
