//! Wire framing of a sealed-model stream.
//!
//! ```text
//! header := magic(4) || stream_id(8) || key_epoch(8) || layer_count(4)
//!        || blocks_per_layer(4)*layer_count || header_mac(8)
//! frame  := seq(8) || layer_id(4) || blk_idx(4) || ciphertext(64) || mac(8)
//! stream := header || frame*          (frames in global seq order)
//! ```
//!
//! All integers are big-endian. The header MAC is the transport MAC over
//! the serialized header prefix keyed to `(stream_id, key_epoch)`; each
//! frame MAC chains on its predecessor (the header MAC for frame 0) and
//! binds `(stream id, seq, layer id, blk idx)`, so a verified prefix of
//! the stream authenticates every framing decision made so far — reorder,
//! splice, and substitution all break the chain at the first bad frame.

use seda_adversary::BLOCK;
use seda_crypto::mac::{BlockPosition, MacTag, PositionBoundMac};

/// Stream magic: "SDS1" (SeDA stream, framing version 1).
pub const MAGIC: [u8; 4] = *b"SDS1";

/// Fixed header bytes before the per-layer block counts.
pub(crate) const HEADER_PREFIX: usize = 4 + 8 + 8 + 4;

/// One frame on the wire: seq, layer id, block index, one protection
/// block of ciphertext, and the chained transport MAC.
pub const FRAME_BYTES: usize = 8 + 4 + 4 + BLOCK + 8;

/// Sanity ceiling on the declared layer count — far above any zoo model,
/// low enough that a corrupted header cannot demand absurd buffering.
pub const MAX_LAYERS: usize = 4096;

/// Total header length for `layers` layer regions.
pub fn header_len(layers: usize) -> usize {
    HEADER_PREFIX + 4 * layers + 8
}

/// Serializes a header (without its MAC) and returns the full buffer
/// with the MAC appended.
pub(crate) fn encode_header(
    transport: &PositionBoundMac,
    stream_id: u64,
    key_epoch: u64,
    blocks_per_layer: &[u32],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(header_len(blocks_per_layer.len()));
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&stream_id.to_be_bytes());
    out.extend_from_slice(&key_epoch.to_be_bytes());
    out.extend_from_slice(&(blocks_per_layer.len() as u32).to_be_bytes());
    for &blocks in blocks_per_layer {
        out.extend_from_slice(&blocks.to_be_bytes());
    }
    let mac = header_mac(transport, stream_id, key_epoch, &out);
    out.extend_from_slice(&mac.0.to_be_bytes());
    out
}

/// The transport MAC over a serialized header prefix.
pub(crate) fn header_mac(
    transport: &PositionBoundMac,
    stream_id: u64,
    key_epoch: u64,
    prefix: &[u8],
) -> MacTag {
    transport.tag(prefix, stream_id, key_epoch, BlockPosition::default())
}

/// The chained transport MAC of one frame: the ciphertext concatenated
/// with the previous tag in the chain, keyed to the stream id, the
/// global sequence number, and the block's `(layer, blk)` position.
pub(crate) fn frame_mac(
    transport: &PositionBoundMac,
    stream_id: u64,
    seq: u64,
    layer: u32,
    blk: u32,
    ct: &[u8],
    prev: MacTag,
) -> MacTag {
    let mut msg = Vec::with_capacity(ct.len() + 8);
    msg.extend_from_slice(ct);
    msg.extend_from_slice(&prev.0.to_be_bytes());
    transport.tag(&msg, stream_id, seq, BlockPosition::new(layer, 0, blk))
}

/// Serializes one frame.
pub(crate) fn encode_frame(seq: u64, layer: u32, blk: u32, ct: &[u8], mac: MacTag) -> Vec<u8> {
    debug_assert_eq!(ct.len(), BLOCK);
    let mut out = Vec::with_capacity(FRAME_BYTES);
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&layer.to_be_bytes());
    out.extend_from_slice(&blk.to_be_bytes());
    out.extend_from_slice(ct);
    out.extend_from_slice(&mac.0.to_be_bytes());
    out
}

/// Reads a big-endian u64 at `at` (caller guarantees bounds).
pub(crate) fn be64(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    u64::from_be_bytes(b)
}

/// Reads a big-endian u32 at `at` (caller guarantees bounds).
pub(crate) fn be32(buf: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[at..at + 4]);
    u32::from_be_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips_its_fields() {
        let transport = PositionBoundMac::new([1; 16]);
        let h = encode_header(&transport, 0xABCD, 3, &[4, 2, 1]);
        assert_eq!(h.len(), header_len(3));
        assert_eq!(&h[..4], &MAGIC);
        assert_eq!(be64(&h, 4), 0xABCD);
        assert_eq!(be64(&h, 12), 3);
        assert_eq!(be32(&h, 20), 3);
        assert_eq!(be32(&h, 24), 4);
        let mac = header_mac(&transport, 0xABCD, 3, &h[..h.len() - 8]);
        assert_eq!(be64(&h, h.len() - 8), mac.0);
    }

    #[test]
    fn frame_macs_chain_and_bind_position() {
        let transport = PositionBoundMac::new([2; 16]);
        let ct = [0x5au8; BLOCK];
        let base = frame_mac(&transport, 1, 0, 0, 0, &ct, MacTag(7));
        assert_ne!(base, frame_mac(&transport, 2, 0, 0, 0, &ct, MacTag(7)));
        assert_ne!(base, frame_mac(&transport, 1, 1, 0, 0, &ct, MacTag(7)));
        assert_ne!(base, frame_mac(&transport, 1, 0, 1, 0, &ct, MacTag(7)));
        assert_ne!(base, frame_mac(&transport, 1, 0, 0, 1, &ct, MacTag(7)));
        assert_ne!(base, frame_mac(&transport, 1, 0, 0, 0, &ct, MacTag(8)));
    }
}
