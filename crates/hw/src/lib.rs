//! 28 nm area/power models for the encryption hardware comparison of
//! Fig. 4: traditional multi-engine AES (T-AES) versus SeDA's
//! bandwidth-aware single-engine design (B-AES).
//!
//! The model is gate-count based. Absolute constants are calibrated to
//! published round-based AES-128 implementations (Banerjee, MIT 2017 —
//! the reference the paper cites): a round-based AES-128 datapath with
//! on-the-fly key expansion occupies roughly 12-15 kGE and draws a few mW
//! at ~1 GHz in a 28 nm-class process. Fig. 4's claim is about *scaling
//! shape* — T-AES replicates whole engines with bandwidth, B-AES adds only
//! XOR banks and pad registers — which gate-count proportionality
//! reproduces regardless of the absolute calibration point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// NAND2-equivalent gate area at 28 nm, in µm².
pub const GE_AREA_UM2: f64 = 0.49;

/// Gate count of one round-based AES-128 engine (datapath, S-boxes,
/// key-expansion logic, control).
pub const AES_ENGINE_GE: f64 = 13_000.0;

/// Dynamic power of one AES engine at 1 GHz, in mW.
pub const AES_ENGINE_MW: f64 = 4.2;

/// Gate count of a 128-bit XOR bank (one 2-input XOR per bit plus
/// pipeline registers for the derived pad).
pub const XOR_BANK_GE: f64 = 128.0 * 2.25 + 128.0 * 4.5;

/// Dynamic power of one XOR bank at 1 GHz, in mW.
pub const XOR_BANK_MW: f64 = 0.07;

/// Gate count of the round-key selection/control logic B-AES adds per
/// engine (mux tree over the 10 expanded round keys).
pub const KEY_MUX_GE: f64 = 1_800.0;

/// Dynamic power of the key mux at 1 GHz, in mW.
pub const KEY_MUX_MW: f64 = 0.12;

/// Pads one key schedule supplies before the expansion input must be
/// widened (round keys 1..=10; see `seda_crypto::otp`).
pub const PADS_PER_SCHEDULE: u32 = 10;

/// Area and power of a hardware configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwCost {
    /// Gate-equivalent count.
    pub gates: f64,
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Dynamic power at 1 GHz in mW.
    pub power_mw: f64,
}

impl HwCost {
    fn from_gates(gates: f64, power_mw: f64) -> Self {
        Self {
            gates,
            area_mm2: gates * GE_AREA_UM2 / 1e6,
            power_mw,
        }
    }
}

/// Cost of a T-AES bank meeting `multiple`× the bandwidth of one engine:
/// `multiple` full AES engines in parallel (Fig. 2(c), e.g. Securator's
/// four engines for 64 B blocks).
///
/// # Panics
///
/// Panics if `multiple` is zero.
pub fn taes_cost(multiple: u32) -> HwCost {
    assert!(multiple > 0, "bandwidth multiple must be positive");
    let n = f64::from(multiple);
    HwCost::from_gates(n * AES_ENGINE_GE, n * AES_ENGINE_MW)
}

/// Cost of a B-AES unit meeting `multiple`× single-engine bandwidth: one
/// AES engine, a key-mux, and `multiple` XOR banks. Beyond
/// [`PADS_PER_SCHEDULE`] pads per evaluation, an extra engine instance is
/// needed to keep widened key expansions off the critical path.
///
/// # Panics
///
/// Panics if `multiple` is zero.
pub fn baes_cost(multiple: u32) -> HwCost {
    assert!(multiple > 0, "bandwidth multiple must be positive");
    let n = f64::from(multiple);
    let engines = f64::from(multiple.div_ceil(PADS_PER_SCHEDULE));
    HwCost::from_gates(
        engines * AES_ENGINE_GE + KEY_MUX_GE + n * XOR_BANK_GE,
        engines * AES_ENGINE_MW + KEY_MUX_MW + n * XOR_BANK_MW,
    )
}

/// One row of Fig. 4: costs of both designs at a bandwidth multiple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Required bandwidth as a multiple of one engine's.
    pub multiple: u32,
    /// T-AES cost.
    pub taes: HwCost,
    /// B-AES cost.
    pub baes: HwCost,
}

/// Sweeps bandwidth multiples `1..=max_multiple` (Fig. 4's x-axis).
pub fn fig4_sweep(max_multiple: u32) -> Vec<Fig4Row> {
    (1..=max_multiple)
        .map(|m| Fig4Row {
            multiple: m,
            taes: taes_cost(m),
            baes: baes_cost(m),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taes_scales_linearly() {
        let a1 = taes_cost(1);
        let a8 = taes_cost(8);
        assert!((a8.area_mm2 / a1.area_mm2 - 8.0).abs() < 1e-9);
        assert!((a8.power_mw / a1.power_mw - 8.0).abs() < 1e-9);
    }

    #[test]
    fn baes_is_nearly_flat() {
        let b1 = baes_cost(1);
        let b8 = baes_cost(8);
        // Area grows by less than 50% from 1x to 8x bandwidth...
        assert!(b8.area_mm2 / b1.area_mm2 < 1.5, "B-AES should stay flat");
        // ...while T-AES grows 8x.
        assert!(taes_cost(8).area_mm2 / taes_cost(1).area_mm2 > 7.9);
    }

    #[test]
    fn baes_beats_taes_at_every_multiple_above_one() {
        for m in 2..=16 {
            let t = taes_cost(m);
            let b = baes_cost(m);
            assert!(b.area_mm2 < t.area_mm2, "area at {m}x");
            assert!(b.power_mw < t.power_mw, "power at {m}x");
        }
    }

    #[test]
    fn securator_point_matches_paper_narrative() {
        // Securator uses 4 engines for 64 B blocks: 4x area. B-AES covers
        // the same bandwidth with ~1 engine + 4 XOR banks.
        let ratio = taes_cost(4).gates / baes_cost(4).gates;
        assert!(ratio > 2.5, "4x T-AES should dwarf B-AES: ratio {ratio:.2}");
    }

    #[test]
    fn schedule_exhaustion_adds_an_engine() {
        let b10 = baes_cost(10);
        let b11 = baes_cost(11);
        assert!(
            b11.gates - b10.gates > AES_ENGINE_GE * 0.9,
            "an 11th pad needs a second schedule source"
        );
    }

    #[test]
    fn sweep_covers_requested_range() {
        let rows = fig4_sweep(16);
        assert_eq!(rows.len(), 16);
        assert_eq!(rows[0].multiple, 1);
        assert_eq!(rows[15].multiple, 16);
        // Monotone non-decreasing costs.
        for w in rows.windows(2) {
            assert!(w[1].taes.area_mm2 >= w[0].taes.area_mm2);
            assert!(w[1].baes.area_mm2 >= w[0].baes.area_mm2);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_multiple_rejected() {
        let _ = taes_cost(0);
    }
}

/// Gate count of one SHA-256-class hash lane (message schedule + digest
/// datapath + control), sustaining ~1 B/cycle.
pub const HASH_LANE_GE: f64 = 22_000.0;

/// Dynamic power of one hash lane at 1 GHz, in mW.
pub const HASH_LANE_MW: f64 = 6.5;

/// Cost of an integrity-verification engine sized to authenticate
/// `bytes_per_cycle` of streamed data (one lane per byte/cycle).
///
/// # Panics
///
/// Panics if `bytes_per_cycle` is not positive.
pub fn verifier_cost(bytes_per_cycle: f64) -> HwCost {
    assert!(bytes_per_cycle > 0.0, "throughput must be positive");
    let lanes = bytes_per_cycle.ceil();
    HwCost::from_gates(lanes * HASH_LANE_GE, lanes * HASH_LANE_MW)
}

#[cfg(test)]
mod verifier_cost_tests {
    use super::*;

    #[test]
    fn verifier_scales_with_lanes() {
        let one = verifier_cost(1.0);
        let twenty = verifier_cost(20.0);
        assert!((twenty.gates / one.gates - 20.0).abs() < 1e-9);
    }

    #[test]
    fn server_verifier_is_the_big_security_block() {
        // 20 B/cycle of hashing dwarfs even a 4x T-AES bank — integrity,
        // not encryption, dominates security area when sized naively;
        // SeDA's layer MAC lets the verifier run at line rate with the
        // same lanes but no metadata traffic.
        let verifier = verifier_cost(20.0);
        let taes4 = taes_cost(4);
        assert!(verifier.area_mm2 > taes4.area_mm2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_throughput_rejected() {
        let _ = verifier_cost(0.0);
    }
}
