//! Whole-model topology: an ordered list of layers plus summary statistics.

use crate::layer::Layer;
use serde::{Deserialize, Serialize};

/// A DNN model as an ordered sequence of layers.
///
/// # Examples
///
/// ```
/// use seda_models::{Layer, Model};
///
/// let model = Model::new(
///     "toy",
///     vec![
///         Layer::conv("conv1", 28, 28, 5, 5, 1, 8, 1),
///         Layer::gemm("fc", 1, 4608, 10),
///     ],
/// );
/// assert_eq!(model.layers().len(), 2);
/// assert!(model.weight_bytes() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Model {
    name: String,
    layers: Vec<Layer>,
}

impl Model {
    /// Creates a model from named layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or two layers share a name.
    pub fn new(name: &str, layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "model {name} has no layers");
        for i in 0..layers.len() {
            for j in i + 1..layers.len() {
                assert_ne!(
                    layers[i].name, layers[j].name,
                    "duplicate layer name in {name}"
                );
            }
        }
        Self {
            name: name.to_owned(),
            layers,
        }
    }

    /// The model's short name (the paper's workload label, e.g. `"rest"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total weight bytes across all layers.
    pub fn weight_bytes(&self) -> u64 {
        self.layers.iter().map(Layer::filter_bytes).sum()
    }

    /// Total multiply-accumulate operations for one inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Sum of all per-layer tensor footprints (a traffic lower bound).
    pub fn total_tensor_bytes(&self) -> u64 {
        self.layers.iter().map(Layer::total_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;

    #[test]
    fn summary_statistics_accumulate() {
        let m = Model::new(
            "t",
            vec![
                Layer::conv("a", 8, 8, 3, 3, 1, 2, 1),
                Layer::gemm("b", 1, 72, 10),
            ],
        );
        assert_eq!(m.weight_bytes(), 3 * 3 * 2 + 72 * 10);
        assert_eq!(m.total_macs(), m.layers()[0].macs() + m.layers()[1].macs());
    }

    #[test]
    #[should_panic(expected = "no layers")]
    fn empty_model_rejected() {
        let _ = Model::new("empty", vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate layer name")]
    fn duplicate_names_rejected() {
        let l = Layer::gemm("x", 1, 2, 3);
        let _ = Model::new("dup", vec![l.clone(), l]);
    }
}
