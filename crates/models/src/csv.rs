//! SCALE-Sim-style CSV topology parsing.
//!
//! SCALE-Sim describes networks as CSV files with one layer per row:
//!
//! ```csv
//! Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width,
//! Channels, Num Filter, Strides,
//! Conv1, 224, 224, 7, 7, 3, 64, 2,
//! FC6, 1, 9216, 1, 1, 1, 4096, 1,
//! ```
//!
//! This module reads that format (header optional, trailing commas
//! tolerated, `#` comments skipped) so user topologies drop straight into
//! the simulator. Rows with a 1×1 ifmap and 1×1 filter lower to GEMM
//! layers, matching SCALE-Sim's fully-connected convention; a `DW` suffix
//! on the layer name marks a depthwise convolution.

use crate::layer::Layer;
use crate::model::Model;

/// Error produced when parsing a topology CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTopologyError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl core::fmt::Display for ParseTopologyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "topology line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTopologyError {}

/// Parses a SCALE-Sim-style topology CSV into a model named `name`.
///
/// # Errors
///
/// Returns [`ParseTopologyError`] for malformed rows, zero dimensions,
/// filters larger than their input, or an empty topology.
pub fn parse_topology(name: &str, text: &str) -> Result<Model, ParseTopologyError> {
    let mut layers = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| ParseTopologyError {
            line: i + 1,
            message,
        };
        let fields: Vec<&str> = line
            .split(',')
            .map(str::trim)
            .take_while(|f| !f.is_empty())
            .collect();
        if fields.is_empty() {
            continue;
        }
        // Header row: second field is not numeric.
        if fields.len() > 1 && fields[1].parse::<u32>().is_err() {
            continue;
        }
        if fields.len() < 8 {
            return Err(err(format!("expected 8 fields, found {}", fields.len())));
        }
        let layer_name = fields[0];
        let mut nums = [0u32; 7];
        for (k, f) in fields[1..8].iter().enumerate() {
            nums[k] = f
                .parse()
                .map_err(|e| err(format!("field {}: {e}", k + 2)))?;
        }
        let [ih, iw, r, s, c, m, stride] = nums;
        if ih == 0 || iw == 0 || r == 0 || s == 0 || c == 0 || m == 0 || stride == 0 {
            return Err(err("dimensions must be positive".to_owned()));
        }
        if r > ih || s > iw {
            return Err(err(format!("{r}x{s} filter exceeds {ih}x{iw} input")));
        }
        let layer = if layer_name.to_ascii_uppercase().ends_with("DW") {
            Layer::depthwise(layer_name, ih, iw, r, s, c, stride)
        } else if ih == 1 && r == 1 && s == 1 && stride == 1 {
            // SCALE-Sim writes FC layers as 1 x K ifmap with 1x1 filters.
            Layer::gemm(layer_name, 1, iw * c, m)
        } else {
            Layer::conv(layer_name, ih, iw, r, s, c, m, stride)
        };
        layers.push(layer);
    }
    if layers.is_empty() {
        return Err(ParseTopologyError {
            line: 0,
            message: "topology has no layers".to_owned(),
        });
    }
    // Model::new panics on duplicate names; surface that as an error.
    let mut seen = std::collections::HashSet::new();
    for l in &layers {
        if !seen.insert(l.name.clone()) {
            return Err(ParseTopologyError {
                line: 0,
                message: format!("duplicate layer name {:?}", l.name),
            });
        }
    }
    Ok(Model::new(name, layers))
}

/// Serializes a model back to the CSV topology format.
pub fn write_topology(model: &Model) -> String {
    use crate::layer::LayerKind;
    let mut out = String::from(
        "Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width, Channels, Num Filter, Strides,\n",
    );
    for l in model.layers() {
        let row = match l.kind {
            LayerKind::Conv {
                ih,
                iw,
                r,
                s,
                c,
                m,
                stride,
            } => format!("{}, {ih}, {iw}, {r}, {s}, {c}, {m}, {stride},", l.name),
            LayerKind::DepthwiseConv {
                ih,
                iw,
                r,
                s,
                c,
                stride,
            } => format!("{}, {ih}, {iw}, {r}, {s}, {c}, 1, {stride},", l.name),
            LayerKind::Gemm { m, k, n } => {
                // Batch folds into the ifmap height, matching parse rules
                // only for m == 1 (SCALE-Sim's FC convention).
                format!("{}, {m}, {k}, 1, 1, 1, {n}, 1,", l.name)
            }
        };
        out.push_str(&row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    const SAMPLE: &str = "\
Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width, Channels, Num Filter, Strides,
Conv1, 224, 224, 7, 7, 3, 64, 2,
Conv2_DW, 112, 112, 3, 3, 64, 1, 1,
FC6, 1, 9216, 1, 1, 1, 4096, 1,
";

    #[test]
    fn parses_the_three_layer_kinds() {
        let m = parse_topology("sample", SAMPLE).expect("valid");
        assert_eq!(m.layers().len(), 3);
        assert!(matches!(m.layers()[0].kind, LayerKind::Conv { m: 64, .. }));
        assert!(matches!(
            m.layers()[1].kind,
            LayerKind::DepthwiseConv { c: 64, .. }
        ));
        assert!(matches!(
            m.layers()[2].kind,
            LayerKind::Gemm {
                m: 1,
                k: 9216,
                n: 4096
            }
        ));
    }

    #[test]
    fn header_comments_and_blanks_are_skipped() {
        let text = "# my net\n\nConv1, 8, 8, 3, 3, 1, 4, 1,\n";
        let m = parse_topology("t", text).expect("valid");
        assert_eq!(m.layers().len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "Conv1, 8, 8, 3, 3, 1, 4, 1,\nConv2, 8, 8, 0, 3, 1, 4, 1,\n";
        let err = parse_topology("t", text).expect_err("zero dim");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("positive"));
    }

    #[test]
    fn oversized_filter_rejected() {
        let err = parse_topology("t", "C, 2, 2, 3, 3, 1, 1, 1,").unwrap_err();
        assert!(err.message.contains("exceeds"));
    }

    #[test]
    fn missing_fields_rejected() {
        let err = parse_topology("t", "C, 2, 2, 1,").unwrap_err();
        assert!(err.message.contains("8 fields"));
    }

    #[test]
    fn empty_topology_rejected() {
        assert!(parse_topology("t", "# nothing\n").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let text = "C, 8, 8, 3, 3, 1, 4, 1,\nC, 8, 8, 3, 3, 1, 4, 1,\n";
        let err = parse_topology("t", text).unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn round_trips_through_writer() {
        let m = parse_topology("sample", SAMPLE).expect("valid");
        let text = write_topology(&m);
        let again = parse_topology("sample", &text).expect("own output parses");
        assert_eq!(m, again);
    }

    #[test]
    fn parsed_model_simulates() {
        let m = parse_topology("sample", SAMPLE).expect("valid");
        assert!(m.total_macs() > 0);
        assert!(m.weight_bytes() > 0);
    }
}
