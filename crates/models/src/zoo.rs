//! The thirteen benchmark workloads of the SeDA evaluation (§IV-A).
//!
//! Topologies are transcribed after SCALE-Sim's public topology files and
//! the original model publications: LeNet-5, AlexNet, MobileNet-v1,
//! ResNet-18, GoogLeNet, DLRM, AlphaGoZero, DeepSpeech2, Faster R-CNN
//! (VGG-16 backbone), NCF, a sentiment sequence-CNN, a Transformer forward
//! pass, and Tiny-YOLO. Convolutions use SCALE-Sim's valid-convolution
//! convention; where a network pads to preserve spatial dims, the listed
//! ifmap includes the padding so output shapes stay canonical.

use crate::layer::Layer;
use crate::model::Model;

/// Returns the padded input extent that makes a valid convolution with
/// filter `r` and `stride` produce `ceil(h / stride)` outputs ("same" pad).
fn same(h: u32, r: u32, stride: u32) -> u32 {
    let out = h.div_ceil(stride);
    (out - 1) * stride + r
}

/// LeNet-5 (`let`): the classic 32×32 digit classifier.
pub fn lenet() -> Model {
    Model::new(
        "let",
        vec![
            Layer::conv("conv1", 32, 32, 5, 5, 1, 6, 1),
            Layer::conv("conv2", 14, 14, 5, 5, 6, 16, 1),
            Layer::conv("conv3", 5, 5, 5, 5, 16, 120, 1),
            Layer::gemm("fc1", 1, 120, 84),
            Layer::gemm("fc2", 1, 84, 10),
        ],
    )
}

/// AlexNet (`alex`): 227×227 ImageNet classifier.
pub fn alexnet() -> Model {
    Model::new(
        "alex",
        vec![
            Layer::conv("conv1", 227, 227, 11, 11, 3, 96, 4),
            Layer::conv("conv2", same(27, 5, 1), same(27, 5, 1), 5, 5, 96, 256, 1),
            Layer::conv("conv3", same(13, 3, 1), same(13, 3, 1), 3, 3, 256, 384, 1),
            Layer::conv("conv4", same(13, 3, 1), same(13, 3, 1), 3, 3, 384, 384, 1),
            Layer::conv("conv5", same(13, 3, 1), same(13, 3, 1), 3, 3, 384, 256, 1),
            Layer::gemm("fc6", 1, 9216, 4096),
            Layer::gemm("fc7", 1, 4096, 4096),
            Layer::gemm("fc8", 1, 4096, 1000),
        ],
    )
}

/// MobileNet-v1 (`mob`): depthwise-separable 224×224 classifier.
pub fn mobilenet() -> Model {
    let mut layers = vec![Layer::conv(
        "conv1",
        same(224, 3, 2),
        same(224, 3, 2),
        3,
        3,
        3,
        32,
        2,
    )];
    // (spatial in, channels in, channels out, stride of the depthwise stage)
    let blocks: [(u32, u32, u32, u32); 13] = [
        (112, 32, 64, 1),
        (112, 64, 128, 2),
        (56, 128, 128, 1),
        (56, 128, 256, 2),
        (28, 256, 256, 1),
        (28, 256, 512, 2),
        (14, 512, 512, 1),
        (14, 512, 512, 1),
        (14, 512, 512, 1),
        (14, 512, 512, 1),
        (14, 512, 512, 1),
        (14, 512, 1024, 2),
        (7, 1024, 1024, 1),
    ];
    for (i, (h, cin, cout, stride)) in blocks.into_iter().enumerate() {
        let p = same(h, 3, stride);
        layers.push(Layer::depthwise(
            &format!("dw{}", i + 1),
            p,
            p,
            3,
            3,
            cin,
            stride,
        ));
        let q = h / stride;
        layers.push(Layer::conv(
            &format!("pw{}", i + 1),
            q,
            q,
            1,
            1,
            cin,
            cout,
            1,
        ));
    }
    layers.push(Layer::gemm("fc", 1, 1024, 1000));
    Model::new("mob", layers)
}

/// ResNet-18 (`rest`): 224×224 residual classifier.
pub fn resnet18() -> Model {
    let mut layers = vec![Layer::conv(
        "conv1",
        same(224, 7, 2),
        same(224, 7, 2),
        7,
        7,
        3,
        64,
        2,
    )];
    // Four stages of two basic blocks each; first conv of stages 2-4 halves
    // the spatial dims and doubles channels (downsample 1x1 skipped — its
    // traffic is negligible next to the 3x3 pairs).
    let stages: [(u32, u32, u32); 4] =
        [(56, 64, 64), (56, 64, 128), (28, 128, 256), (14, 256, 512)];
    for (s, (h_in, cin, cout)) in stages.into_iter().enumerate() {
        let stride = if s == 0 { 1 } else { 2 };
        let h_out = h_in / stride;
        let p_first = same(h_in, 3, stride);
        let p = same(h_out, 3, 1);
        layers.push(Layer::conv(
            &format!("conv{}_1a", s + 2),
            p_first,
            p_first,
            3,
            3,
            cin,
            cout,
            stride,
        ));
        for (b, suffix) in [(1, "1b"), (2, "2a"), (3, "2b")] {
            let _ = b;
            layers.push(Layer::conv(
                &format!("conv{}_{}", s + 2, suffix),
                p,
                p,
                3,
                3,
                cout,
                cout,
                1,
            ));
        }
    }
    layers.push(Layer::gemm("fc", 1, 512, 1000));
    Model::new("rest", layers)
}

/// GoogLeNet (`goo`): Inception-v1 with nine inception modules.
pub fn googlenet() -> Model {
    let mut layers = vec![
        Layer::conv("conv1", same(224, 7, 2), same(224, 7, 2), 7, 7, 3, 64, 2),
        Layer::conv("conv2", 56, 56, 1, 1, 64, 64, 1),
        Layer::conv("conv3", same(56, 3, 1), same(56, 3, 1), 3, 3, 64, 192, 1),
    ];
    // (name, spatial, cin, n1x1, n3r, n3, n5r, n5, pool-proj)
    #[allow(clippy::type_complexity)] // transcribed straight from the GoogLeNet table
    let modules: [(&str, u32, u32, u32, u32, u32, u32, u32, u32); 9] = [
        ("3a", 28, 192, 64, 96, 128, 16, 32, 32),
        ("3b", 28, 256, 128, 128, 192, 32, 96, 64),
        ("4a", 14, 480, 192, 96, 208, 16, 48, 64),
        ("4b", 14, 512, 160, 112, 224, 24, 64, 64),
        ("4c", 14, 512, 128, 128, 256, 24, 64, 64),
        ("4d", 14, 512, 112, 144, 288, 32, 64, 64),
        ("4e", 14, 528, 256, 160, 320, 32, 128, 128),
        ("5a", 7, 832, 256, 160, 320, 32, 128, 128),
        ("5b", 7, 832, 384, 192, 384, 48, 128, 128),
    ];
    for (name, h, cin, n1, n3r, n3, n5r, n5, pp) in modules {
        let p3 = same(h, 3, 1);
        let p5 = same(h, 5, 1);
        layers.push(Layer::conv(
            &format!("inc{name}_1x1"),
            h,
            h,
            1,
            1,
            cin,
            n1,
            1,
        ));
        layers.push(Layer::conv(
            &format!("inc{name}_3x3r"),
            h,
            h,
            1,
            1,
            cin,
            n3r,
            1,
        ));
        layers.push(Layer::conv(
            &format!("inc{name}_3x3"),
            p3,
            p3,
            3,
            3,
            n3r,
            n3,
            1,
        ));
        layers.push(Layer::conv(
            &format!("inc{name}_5x5r"),
            h,
            h,
            1,
            1,
            cin,
            n5r,
            1,
        ));
        layers.push(Layer::conv(
            &format!("inc{name}_5x5"),
            p5,
            p5,
            5,
            5,
            n5r,
            n5,
            1,
        ));
        layers.push(Layer::conv(
            &format!("inc{name}_pp"),
            h,
            h,
            1,
            1,
            cin,
            pp,
            1,
        ));
    }
    layers.push(Layer::gemm("fc", 1, 1024, 1000));
    Model::new("goo", layers)
}

/// DLRM (`dlrm`): MLPerf recommendation model (bottom + top MLP, batch 128).
pub fn dlrm() -> Model {
    const BATCH: u32 = 128;
    Model::new(
        "dlrm",
        vec![
            Layer::gemm("bot1", BATCH, 13, 512),
            Layer::gemm("bot2", BATCH, 512, 256),
            Layer::gemm("bot3", BATCH, 256, 64),
            Layer::gemm("top1", BATCH, 479, 1024),
            Layer::gemm("top2", BATCH, 1024, 1024),
            Layer::gemm("top3", BATCH, 1024, 512),
            Layer::gemm("top4", BATCH, 512, 256),
            Layer::gemm("top5", BATCH, 256, 1),
        ],
    )
}

/// AlphaGoZero (`algo`): 19×19 board, 17 input planes, residual tower.
pub fn alphagozero() -> Model {
    let p = same(19, 3, 1);
    let mut layers = vec![Layer::conv("conv1", p, p, 3, 3, 17, 256, 1)];
    for i in 0..18 {
        layers.push(Layer::conv(
            &format!("res{}", i + 1),
            p,
            p,
            3,
            3,
            256,
            256,
            1,
        ));
    }
    layers.push(Layer::conv("policy", 19, 19, 1, 1, 256, 2, 1));
    layers.push(Layer::conv("value", 19, 19, 1, 1, 256, 1, 1));
    Model::new("algo", layers)
}

/// DeepSpeech2 (`ds2`): spectrogram front-end convs + recurrent GEMMs.
pub fn deepspeech2() -> Model {
    Model::new(
        "ds2",
        vec![
            Layer::conv("conv1", 161, 700, 41, 11, 1, 32, 2),
            Layer::conv("conv2", 61, 345, 21, 11, 32, 32, 2),
            // Four bidirectional GRU layers, lowered to per-sequence GEMMs:
            // 168 time steps, 3 gates × 1760 hidden units.
            Layer::gemm("gru1", 168, 1312, 5280),
            Layer::gemm("gru2", 168, 3520, 5280),
            Layer::gemm("gru3", 168, 3520, 5280),
            Layer::gemm("gru4", 168, 3520, 5280),
            Layer::gemm("fc", 168, 1760, 29),
        ],
    )
}

/// Faster R-CNN (`fast`): VGG-16 backbone at 300×300 plus the RPN head.
pub fn fasterrcnn() -> Model {
    let mut layers = Vec::new();
    // (name, spatial, cin, cout) for the VGG-16 conv stack.
    let convs: [(&str, u32, u32, u32); 13] = [
        ("conv1_1", 300, 3, 64),
        ("conv1_2", 300, 64, 64),
        ("conv2_1", 150, 64, 128),
        ("conv2_2", 150, 128, 128),
        ("conv3_1", 75, 128, 256),
        ("conv3_2", 75, 256, 256),
        ("conv3_3", 75, 256, 256),
        ("conv4_1", 38, 256, 512),
        ("conv4_2", 38, 512, 512),
        ("conv4_3", 38, 512, 512),
        ("conv5_1", 19, 512, 512),
        ("conv5_2", 19, 512, 512),
        ("conv5_3", 19, 512, 512),
    ];
    for (name, h, cin, cout) in convs {
        let p = same(h, 3, 1);
        layers.push(Layer::conv(name, p, p, 3, 3, cin, cout, 1));
    }
    let p = same(19, 3, 1);
    layers.push(Layer::conv("rpn_conv", p, p, 3, 3, 512, 512, 1));
    layers.push(Layer::conv("rpn_cls", 19, 19, 1, 1, 512, 18, 1));
    layers.push(Layer::conv("rpn_bbox", 19, 19, 1, 1, 512, 36, 1));
    // Detection head over 128 proposals.
    layers.push(Layer::gemm("fc6", 128, 25088, 4096));
    layers.push(Layer::gemm("fc7", 128, 4096, 4096));
    layers.push(Layer::gemm("cls_score", 128, 4096, 21));
    layers.push(Layer::gemm("bbox_pred", 128, 4096, 84));
    Model::new("fast", layers)
}

/// NCF (`ncf`): neural collaborative filtering MLP, batch 256.
pub fn ncf() -> Model {
    const BATCH: u32 = 256;
    Model::new(
        "ncf",
        vec![
            Layer::gemm("mlp1", BATCH, 128, 256),
            Layer::gemm("mlp2", BATCH, 256, 256),
            Layer::gemm("mlp3", BATCH, 256, 128),
            Layer::gemm("mlp4", BATCH, 128, 64),
            Layer::gemm("predict", BATCH, 128, 1),
        ],
    )
}

/// Sentiment sequence-CNN (`sent`): text CNN over 56×300 embeddings.
pub fn sentimental_seqcnn() -> Model {
    Model::new(
        "sent",
        vec![
            Layer::conv("conv3", 56, 300, 3, 300, 1, 100, 1),
            Layer::conv("conv4", 56, 300, 4, 300, 1, 100, 1),
            Layer::conv("conv5", 56, 300, 5, 300, 1, 100, 1),
            Layer::gemm("fc", 1, 300, 2),
        ],
    )
}

/// Transformer forward pass (`trf`): 6 encoder blocks, seq 512, d_model 512.
pub fn transformer_fwd() -> Model {
    const SEQ: u32 = 512;
    const D: u32 = 512;
    const FF: u32 = 2048;
    let mut layers = Vec::new();
    for b in 0..6 {
        layers.push(Layer::gemm(&format!("b{b}_qkv"), SEQ, D, 3 * D));
        layers.push(Layer::gemm(&format!("b{b}_scores"), SEQ, D, SEQ));
        layers.push(Layer::gemm(&format!("b{b}_context"), SEQ, SEQ, D));
        layers.push(Layer::gemm(&format!("b{b}_out"), SEQ, D, D));
        layers.push(Layer::gemm(&format!("b{b}_ff1"), SEQ, D, FF));
        layers.push(Layer::gemm(&format!("b{b}_ff2"), SEQ, FF, D));
    }
    layers.push(Layer::gemm("logits", SEQ, D, 32000));
    Model::new("trf", layers)
}

/// Tiny-YOLO v2 (`yolo`): 416×416 detector.
pub fn yolo_tiny() -> Model {
    let mut layers = Vec::new();
    let convs: [(&str, u32, u32, u32); 8] = [
        ("conv1", 416, 3, 16),
        ("conv2", 208, 16, 32),
        ("conv3", 104, 32, 64),
        ("conv4", 52, 64, 128),
        ("conv5", 26, 128, 256),
        ("conv6", 13, 256, 512),
        ("conv7", 13, 512, 1024),
        ("conv8", 13, 1024, 1024),
    ];
    for (name, h, cin, cout) in convs {
        let p = same(h, 3, 1);
        layers.push(Layer::conv(name, p, p, 3, 3, cin, cout, 1));
    }
    layers.push(Layer::conv("conv9", 13, 13, 1, 1, 1024, 125, 1));
    Model::new("yolo", layers)
}

/// All thirteen workloads in the paper's presentation order.
pub fn all_models() -> Vec<Model> {
    vec![
        lenet(),
        alexnet(),
        mobilenet(),
        resnet18(),
        googlenet(),
        dlrm(),
        alphagozero(),
        deepspeech2(),
        fasterrcnn(),
        ncf(),
        sentimental_seqcnn(),
        transformer_fwd(),
        yolo_tiny(),
    ]
}

/// Looks a workload up by its paper label (e.g. `"rest"` for ResNet-18).
/// Matching is ASCII case-insensitive: scenario files and CLI arguments
/// reference models by string, so `"REST"` and `"Rest"` resolve too.
pub fn by_name(name: &str) -> Option<Model> {
    all_models()
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(name))
}

/// Transformer autoregressive decode step (`trf-dec<context>`): a single
/// new token through the six [`transformer_fwd`] decoder blocks against a
/// KV cache of `context` past tokens.
///
/// Every GEMM has `m = 1`, so the workload is dominated by streaming
/// weight and cached-KV *reads* with almost no output writes — the
/// read-heavy serving pattern that per-block metadata schemes pay for on
/// every token.
///
/// # Panics
///
/// Panics if `context` is zero (a decode step attends to at least the
/// token being generated).
pub fn transformer_decode(context: u32) -> Model {
    const D: u32 = 512;
    const FF: u32 = 2048;
    const VOCAB: u32 = 32000;
    assert!(context > 0, "decode attends to at least one cached token");
    let mut layers = Vec::new();
    for b in 0..6 {
        layers.push(Layer::gemm(&format!("b{b}_qkv"), 1, D, 3 * D));
        // Attention over the KV cache: Q·Kᵀ against `context` cached keys,
        // then the probability-weighted sum over `context` cached values.
        layers.push(Layer::gemm(&format!("b{b}_scores"), 1, D, context));
        layers.push(Layer::gemm(&format!("b{b}_context"), 1, context, D));
        layers.push(Layer::gemm(&format!("b{b}_out"), 1, D, D));
        layers.push(Layer::gemm(&format!("b{b}_ff1"), 1, D, FF));
        layers.push(Layer::gemm(&format!("b{b}_ff2"), 1, FF, D));
    }
    layers.push(Layer::gemm("logits", 1, D, VOCAB));
    Model::new(&format!("trf-dec{context}"), layers)
}

/// DLRM embedding-gather stress workload (`dlrm-emb<tables>x<dim>`): one
/// tiny `lookups × embedding_dim` gather per embedding table followed by
/// the feature-interaction top MLP.
///
/// Each per-table gather is a degenerate `k = 1` GEMM whose operands are
/// far too small to fill a DRAM row, so the burst stream degenerates into
/// scattered short runs — deliberately stressing the singleton-streak
/// fallback of the batched DRAM replay kernel.
///
/// # Panics
///
/// Panics if any parameter is zero.
pub fn dlrm_gather(tables: u32, embedding_dim: u32, lookups: u32) -> Model {
    assert!(tables > 0, "need at least one embedding table");
    assert!(embedding_dim > 0, "embedding vectors need a dimension");
    assert!(lookups > 0, "need at least one lookup per table");
    let mut layers = Vec::new();
    for t in 0..tables {
        layers.push(Layer::gemm(&format!("emb{t}"), lookups, 1, embedding_dim));
    }
    // Concatenated embeddings feed the over-arch MLP, as in DLRM proper.
    let features = tables * embedding_dim;
    layers.push(Layer::gemm("top1", lookups, features, 1024));
    layers.push(Layer::gemm("top2", lookups, 1024, 256));
    layers.push(Layer::gemm("top3", lookups, 256, 1));
    Model::new(&format!("dlrm-emb{tables}x{embedding_dim}"), layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_workloads() {
        let models = all_models();
        assert_eq!(models.len(), 13);
        let names: Vec<&str> = models.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            [
                "let", "alex", "mob", "rest", "goo", "dlrm", "algo", "ds2", "fast", "ncf", "sent",
                "trf", "yolo"
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("rest").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        for spelled in ["REST", "Rest", "rEsT"] {
            let m = by_name(spelled).expect("case-insensitive lookup");
            assert_eq!(m.name(), "rest");
        }
    }

    #[test]
    fn every_model_round_trips_through_by_name() {
        // Scenario files reference workloads by string, so lookup must be
        // total over the zoo: every registered name (in any case) resolves
        // back to the same model.
        for model in all_models() {
            let found = by_name(model.name())
                .unwrap_or_else(|| panic!("{} missing from by_name", model.name()));
            assert_eq!(found.name(), model.name());
            assert_eq!(found.layers().len(), model.layers().len());
            let upper = model.name().to_ascii_uppercase();
            assert_eq!(
                by_name(&upper).expect("uppercase resolves").name(),
                model.name()
            );
        }
    }

    #[test]
    fn transformer_decode_is_read_heavy_and_parametric() {
        let m = transformer_decode(2048);
        assert_eq!(m.name(), "trf-dec2048");
        // 6 blocks × 6 GEMMs + logits.
        assert_eq!(m.layers().len(), 37);
        // Every decode GEMM emits a single output row: weight/KV reads
        // dominate writes by construction.
        let shorter = transformer_decode(128);
        assert!(
            m.weight_bytes() > shorter.weight_bytes(),
            "a longer KV cache means more streamed bytes per token"
        );
    }

    #[test]
    fn dlrm_gather_is_parametric() {
        let m = dlrm_gather(26, 64, 128);
        assert_eq!(m.name(), "dlrm-emb26x64");
        assert_eq!(m.layers().len(), 26 + 3);
        // Each gather reads a lookups×1 index column and a 1×dim embedding
        // row: tiny operands that cannot fill a DRAM row.
        let emb = &m.layers()[0];
        assert!(emb.ifmap_bytes() + emb.filter_bytes() < 4096);
    }

    #[test]
    fn same_padding_preserves_extent() {
        assert_eq!(same(56, 3, 1), 58);
        assert_eq!(same(224, 3, 2), 225);
        assert_eq!(same(224, 7, 2), 229);
        // ofmap of a valid conv over the padded extent is ceil(h/stride)
        let l = Layer::conv("t", same(56, 3, 1), same(56, 3, 1), 3, 3, 1, 1, 1);
        assert_eq!(l.ofmap_dims(), (56, 56));
    }

    #[test]
    fn alexnet_canonical_shapes() {
        let m = alexnet();
        assert_eq!(m.layers()[0].ofmap_dims(), (55, 55));
        assert_eq!(m.layers()[1].ofmap_dims(), (27, 27));
        assert_eq!(m.layers()[4].ofmap_dims(), (13, 13));
        // ~60M parameters, dominated by fc6.
        let w = m.weight_bytes();
        assert!(w > 55_000_000 && w < 65_000_000, "alexnet weights: {w}");
    }

    #[test]
    fn mobilenet_structure() {
        let m = mobilenet();
        // 1 stem + 13 × (dw + pw) + 1 fc = 28 layers.
        assert_eq!(m.layers().len(), 28);
        // ~4.2M parameters.
        let w = m.weight_bytes();
        assert!(w > 3_000_000 && w < 5_000_000, "mobilenet weights: {w}");
    }

    #[test]
    fn resnet18_canonical_weight_count() {
        let m = resnet18();
        // ~11M parameters (downsample convs omitted → slightly below 11.7M).
        let w = m.weight_bytes();
        assert!(w > 9_000_000 && w < 12_500_000, "resnet18 weights: {w}");
    }

    #[test]
    fn googlenet_module_count() {
        let m = googlenet();
        // 3 stem + 9 modules × 6 convs + 1 fc.
        assert_eq!(m.layers().len(), 3 + 54 + 1);
    }

    #[test]
    fn all_models_have_positive_work() {
        for m in all_models() {
            assert!(m.total_macs() > 0, "{} has zero MACs", m.name());
            assert!(m.weight_bytes() > 0, "{} has zero weights", m.name());
        }
    }

    #[test]
    fn transformer_is_gemm_dominated() {
        let m = transformer_fwd();
        assert!(m.total_macs() > 10_000_000_000, "trf should be >10 GMAC");
    }
}

#[cfg(test)]
mod canonical_shape_tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn resnet18_stage_dims() {
        let m = resnet18();
        let dims: Vec<(u64, u64)> = m.layers().iter().map(|l| l.ofmap_dims()).collect();
        assert_eq!(dims[0], (112, 112), "conv1");
        assert_eq!(dims[1], (56, 56), "conv2_1a");
        assert_eq!(dims[5], (28, 28), "conv3_1a");
        assert_eq!(dims[9], (14, 14), "conv4_1a");
        assert_eq!(dims[13], (7, 7), "conv5_1a");
    }

    #[test]
    fn mobilenet_spatial_pyramid() {
        let m = mobilenet();
        // Stem halves 224 -> 112; stage strides land on 7x7 by dw13.
        assert_eq!(m.layers()[0].ofmap_dims(), (112, 112));
        let dw13 = m.layers().iter().find(|l| l.name == "dw13").expect("dw13");
        assert_eq!(dw13.ofmap_dims(), (7, 7));
    }

    #[test]
    fn yolo_tiny_detector_grid() {
        let m = yolo_tiny();
        let last = m.layers().last().expect("conv9");
        assert_eq!(last.ofmap_dims(), (13, 13), "13x13 detection grid");
        assert_eq!(last.ofmap_bytes(), 13 * 13 * 125);
    }

    #[test]
    fn googlenet_inception_output_depths() {
        // Each module's branch filter counts sum to the next module's cin.
        let m = googlenet();
        let find = |name: &str| {
            m.layers()
                .iter()
                .find(|l| l.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        for (mod_a, next_in) in [("3a", 256u64), ("3b", 480), ("4a", 512)] {
            let depth: u64 = [
                format!("inc{mod_a}_1x1"),
                format!("inc{mod_a}_3x3"),
                format!("inc{mod_a}_5x5"),
                format!("inc{mod_a}_pp"),
            ]
            .iter()
            .map(|n| {
                let l = find(n);
                l.ofmap_bytes() / (l.ofmap_dims().0 * l.ofmap_dims().1)
            })
            .sum();
            assert_eq!(depth, next_in, "module {mod_a} concat depth");
        }
    }

    #[test]
    fn alphagozero_board_geometry() {
        let m = alphagozero();
        for l in m.layers() {
            assert_eq!(l.ofmap_dims(), (19, 19), "{} stays on the board", l.name);
        }
    }

    #[test]
    fn transformer_block_shapes_chain() {
        let m = transformer_fwd();
        let qkv = &m.layers()[0];
        assert_eq!(qkv.ofmap_bytes(), 512 * 1536);
        let scores = &m.layers()[1];
        assert_eq!(scores.ofmap_bytes(), 512 * 512, "seq x seq attention");
    }

    #[test]
    fn deepspeech2_front_end_shrinks_time() {
        let m = deepspeech2();
        let (h1, w1) = m.layers()[0].ofmap_dims();
        assert!(
            h1 < 161 && w1 < 700,
            "stride-2 conv shrinks the spectrogram"
        );
    }

    #[test]
    fn dlrm_and_ncf_are_pure_gemm() {
        for m in [dlrm(), ncf()] {
            for l in m.layers() {
                assert!(
                    matches!(l.kind, LayerKind::Gemm { .. }),
                    "{} must be a GEMM",
                    l.name
                );
            }
        }
    }
}
