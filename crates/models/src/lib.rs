//! DNN workload descriptions for the SeDA secure-accelerator evaluation.
//!
//! The crate provides:
//!
//! * [`layer`] — shape algebra for convolution, depthwise-convolution, and
//!   GEMM layers, including lowering to the systolic-array GEMM view
//!   (SCALE-Sim's im2col convention) and tensor footprints at the paper's
//!   1 B/element precision.
//! * [`model`] — ordered layer lists with summary statistics.
//! * [`zoo`] — the thirteen benchmark workloads of §IV-A, from LeNet to
//!   Tiny-YOLO.
//!
//! # Examples
//!
//! ```
//! use seda_models::zoo;
//!
//! let resnet = zoo::resnet18();
//! println!(
//!     "{}: {} layers, {:.1} M weights",
//!     resnet.name(),
//!     resnet.layers().len(),
//!     resnet.weight_bytes() as f64 / 1e6
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod layer;
pub mod model;
pub mod zoo;

pub use csv::{parse_topology, write_topology, ParseTopologyError};
pub use layer::{GemmShape, Layer, LayerKind, ELEMENT_BYTES};
pub use model::Model;
