//! DNN layer shape algebra.
//!
//! Layers are described by the same shape tuple SCALE-Sim topology files use
//! (ifmap H/W, filter R/S, channels C, filter count M, stride) and lower to
//! the GEMM the systolic array actually executes. All tensor sizes assume
//! the paper's Table II precision of one byte per element.

use serde::{Deserialize, Serialize};

/// Bytes per tensor element (Table II: 1 B per element on both NPUs).
pub const ELEMENT_BYTES: u64 = 1;

/// The computational shape of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Standard convolution over an `ih × iw × c` input with `m` filters of
    /// `r × s × c` weights.
    Conv {
        /// Input feature-map height.
        ih: u32,
        /// Input feature-map width.
        iw: u32,
        /// Filter height.
        r: u32,
        /// Filter width.
        s: u32,
        /// Input channels.
        c: u32,
        /// Number of filters (output channels).
        m: u32,
        /// Stride (same in both dimensions).
        stride: u32,
    },
    /// Depthwise convolution: one `r × s` filter per channel, no
    /// cross-channel reduction.
    DepthwiseConv {
        /// Input feature-map height.
        ih: u32,
        /// Input feature-map width.
        iw: u32,
        /// Filter height.
        r: u32,
        /// Filter width.
        s: u32,
        /// Channels (input == output).
        c: u32,
        /// Stride (same in both dimensions).
        stride: u32,
    },
    /// A general matrix multiply `M×K · K×N`, covering fully-connected
    /// layers, attention projections, and recommendation-model MLPs.
    Gemm {
        /// Output rows (batch × sequence positions).
        m: u32,
        /// Inner (reduction) dimension.
        k: u32,
        /// Output columns.
        n: u32,
    },
}

/// The GEMM a layer lowers to on a systolic array (SCALE-Sim's im2col view).
///
/// `sr` rows (output pixels), `t` reduction length, `sc` columns (filters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmShape {
    /// Number of independent output rows (spatial positions × batch).
    pub sr: u64,
    /// Reduction (dot-product) length.
    pub t: u64,
    /// Number of output columns (filters / output features).
    pub sc: u64,
    /// How many such GEMMs the layer comprises (1 except depthwise, which
    /// runs one small GEMM per channel).
    pub folds: u64,
}

impl GemmShape {
    /// Total multiply-accumulate operations in the layer.
    pub fn macs(&self) -> u64 {
        self.sr * self.t * self.sc * self.folds
    }
}

/// A named DNN layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable layer name (unique within a model).
    pub name: String,
    /// Shape of the computation.
    pub kind: LayerKind,
}

impl Layer {
    /// Creates a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the stride is zero, or if the filter is
    /// larger than the (implicitly padded) input.
    #[allow(clippy::too_many_arguments)] // mirrors the SCALE-Sim CSV row
    pub fn conv(name: &str, ih: u32, iw: u32, r: u32, s: u32, c: u32, m: u32, stride: u32) -> Self {
        assert!(
            ih > 0 && iw > 0 && r > 0 && s > 0 && c > 0 && m > 0 && stride > 0,
            "conv dims must be positive: {name}"
        );
        assert!(r <= ih && s <= iw, "filter exceeds input: {name}");
        Self {
            name: name.to_owned(),
            kind: LayerKind::Conv {
                ih,
                iw,
                r,
                s,
                c,
                m,
                stride,
            },
        }
    }

    /// Creates a depthwise-convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the stride is zero.
    pub fn depthwise(name: &str, ih: u32, iw: u32, r: u32, s: u32, c: u32, stride: u32) -> Self {
        assert!(
            ih > 0 && iw > 0 && r > 0 && s > 0 && c > 0 && stride > 0,
            "depthwise dims must be positive: {name}"
        );
        Self {
            name: name.to_owned(),
            kind: LayerKind::DepthwiseConv {
                ih,
                iw,
                r,
                s,
                c,
                stride,
            },
        }
    }

    /// Creates a GEMM (fully-connected / projection) layer.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn gemm(name: &str, m: u32, k: u32, n: u32) -> Self {
        assert!(
            m > 0 && k > 0 && n > 0,
            "gemm dims must be positive: {name}"
        );
        Self {
            name: name.to_owned(),
            kind: LayerKind::Gemm { m, k, n },
        }
    }

    /// Output feature-map height and width (1×1 for GEMM layers).
    ///
    /// Convolutions use "valid" sizing on an input assumed pre-padded, the
    /// same convention SCALE-Sim's topology files follow.
    pub fn ofmap_dims(&self) -> (u64, u64) {
        match self.kind {
            LayerKind::Conv {
                ih,
                iw,
                r,
                s,
                stride,
                ..
            }
            | LayerKind::DepthwiseConv {
                ih,
                iw,
                r,
                s,
                stride,
                ..
            } => {
                let oh = (u64::from(ih) - u64::from(r)) / u64::from(stride) + 1;
                let ow = (u64::from(iw) - u64::from(s)) / u64::from(stride) + 1;
                (oh, ow)
            }
            LayerKind::Gemm { m, .. } => (u64::from(m), 1),
        }
    }

    /// Input feature-map footprint in bytes.
    pub fn ifmap_bytes(&self) -> u64 {
        ELEMENT_BYTES
            * match self.kind {
                LayerKind::Conv { ih, iw, c, .. } | LayerKind::DepthwiseConv { ih, iw, c, .. } => {
                    u64::from(ih) * u64::from(iw) * u64::from(c)
                }
                LayerKind::Gemm { m, k, .. } => u64::from(m) * u64::from(k),
            }
    }

    /// Weight (filter) footprint in bytes.
    pub fn filter_bytes(&self) -> u64 {
        ELEMENT_BYTES
            * match self.kind {
                LayerKind::Conv { r, s, c, m, .. } => {
                    u64::from(r) * u64::from(s) * u64::from(c) * u64::from(m)
                }
                LayerKind::DepthwiseConv { r, s, c, .. } => {
                    u64::from(r) * u64::from(s) * u64::from(c)
                }
                LayerKind::Gemm { k, n, .. } => u64::from(k) * u64::from(n),
            }
    }

    /// Output feature-map footprint in bytes.
    pub fn ofmap_bytes(&self) -> u64 {
        let (oh, ow) = self.ofmap_dims();
        ELEMENT_BYTES
            * match self.kind {
                LayerKind::Conv { m, .. } => oh * ow * u64::from(m),
                LayerKind::DepthwiseConv { c, .. } => oh * ow * u64::from(c),
                LayerKind::Gemm { m, n, .. } => u64::from(m) * u64::from(n),
            }
    }

    /// The GEMM this layer lowers to (im2col for convolutions).
    pub fn gemm_shape(&self) -> GemmShape {
        match self.kind {
            LayerKind::Conv { r, s, c, m, .. } => {
                let (oh, ow) = self.ofmap_dims();
                GemmShape {
                    sr: oh * ow,
                    t: u64::from(r) * u64::from(s) * u64::from(c),
                    sc: u64::from(m),
                    folds: 1,
                }
            }
            LayerKind::DepthwiseConv { r, s, c, .. } => {
                let (oh, ow) = self.ofmap_dims();
                GemmShape {
                    sr: oh * ow,
                    t: u64::from(r) * u64::from(s),
                    sc: 1,
                    folds: u64::from(c),
                }
            }
            LayerKind::Gemm { m, k, n } => GemmShape {
                sr: u64::from(m),
                t: u64::from(k),
                sc: u64::from(n),
                folds: 1,
            },
        }
    }

    /// Total multiply-accumulates in the layer.
    pub fn macs(&self) -> u64 {
        self.gemm_shape().macs()
    }

    /// Total bytes of all three tensors (the lower bound on DRAM traffic if
    /// nothing is resident and everything is moved exactly once).
    pub fn total_bytes(&self) -> u64 {
        self.ifmap_bytes() + self.filter_bytes() + self.ofmap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_ofmap_dims() {
        // AlexNet conv1: 227x227x3, 11x11, 96 filters, stride 4 → 55x55.
        let l = Layer::conv("conv1", 227, 227, 11, 11, 3, 96, 4);
        assert_eq!(l.ofmap_dims(), (55, 55));
        assert_eq!(l.ofmap_bytes(), 55 * 55 * 96);
        assert_eq!(l.filter_bytes(), 11 * 11 * 3 * 96);
    }

    #[test]
    fn conv_gemm_lowering() {
        let l = Layer::conv("c", 8, 8, 3, 3, 4, 16, 1);
        let g = l.gemm_shape();
        assert_eq!(g.sr, 36); // 6x6 output
        assert_eq!(g.t, 36); // 3*3*4
        assert_eq!(g.sc, 16);
        assert_eq!(g.macs(), 36 * 36 * 16);
    }

    #[test]
    fn depthwise_folds_per_channel() {
        let l = Layer::depthwise("dw", 16, 16, 3, 3, 32, 1);
        let g = l.gemm_shape();
        assert_eq!(g.folds, 32);
        assert_eq!(g.sc, 1);
        assert_eq!(l.macs(), 14 * 14 * 9 * 32);
    }

    #[test]
    fn gemm_layer_tensors() {
        let l = Layer::gemm("fc", 4, 256, 100);
        assert_eq!(l.ifmap_bytes(), 4 * 256);
        assert_eq!(l.filter_bytes(), 256 * 100);
        assert_eq!(l.ofmap_bytes(), 4 * 100);
    }

    #[test]
    fn strided_dims_round_down() {
        let l = Layer::conv("c", 7, 7, 3, 3, 1, 1, 2);
        assert_eq!(l.ofmap_dims(), (3, 3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = Layer::conv("bad", 0, 8, 3, 3, 1, 1, 1);
    }

    #[test]
    #[should_panic(expected = "filter exceeds input")]
    fn oversized_filter_rejected() {
        let _ = Layer::conv("bad", 2, 2, 3, 3, 1, 1, 1);
    }
}
