//! Property-based tests for the layer shape algebra.

use proptest::prelude::*;
use seda_models::{Layer, LayerKind};

fn arb_conv_dims() -> impl Strategy<Value = (u32, u32, u32, u32, u32, u32, u32)> {
    (
        2u32..256,
        2u32..256,
        1u32..8,
        1u32..8,
        1u32..128,
        1u32..256,
        1u32..4,
    )
        .prop_filter("filter fits", |(ih, iw, r, s, ..)| r <= ih && s <= iw)
}

proptest! {
    #[test]
    fn conv_output_dims_are_positive_and_bounded((ih, iw, r, s, c, m, stride) in arb_conv_dims()) {
        let l = Layer::conv("p", ih, iw, r, s, c, m, stride);
        let (oh, ow) = l.ofmap_dims();
        prop_assert!(oh >= 1 && ow >= 1);
        prop_assert!(oh <= u64::from(ih) && ow <= u64::from(iw));
    }

    #[test]
    fn conv_macs_match_tensor_algebra((ih, iw, r, s, c, m, stride) in arb_conv_dims()) {
        let l = Layer::conv("p", ih, iw, r, s, c, m, stride);
        let (oh, ow) = l.ofmap_dims();
        prop_assert_eq!(
            l.macs(),
            oh * ow * u64::from(r) * u64::from(s) * u64::from(c) * u64::from(m)
        );
    }

    #[test]
    fn gemm_shape_is_exact(m in 1u32..2048, k in 1u32..4096, n in 1u32..4096) {
        let l = Layer::gemm("p", m, k, n);
        let g = l.gemm_shape();
        prop_assert_eq!(g.macs(), u64::from(m) * u64::from(k) * u64::from(n));
        prop_assert_eq!(l.ifmap_bytes() , u64::from(m) * u64::from(k));
    }

    #[test]
    fn stride_one_never_shrinks_below_filter((ih, iw, r, s, c, m, _stride) in arb_conv_dims()) {
        let l = Layer::conv("p", ih, iw, r, s, c, m, 1);
        let (oh, ow) = l.ofmap_dims();
        prop_assert_eq!(oh, u64::from(ih - r + 1));
        prop_assert_eq!(ow, u64::from(iw - s + 1));
    }

    #[test]
    fn depthwise_preserves_channel_count(ih in 3u32..128, c in 1u32..256) {
        let l = Layer::depthwise("p", ih, ih, 3, 3, c, 1);
        match l.kind {
            LayerKind::DepthwiseConv { c: ch, .. } => prop_assert_eq!(ch, c),
            _ => prop_assert!(false, "wrong kind"),
        }
        let g = l.gemm_shape();
        prop_assert_eq!(g.folds, u64::from(c));
    }

    #[test]
    fn total_bytes_is_sum_of_tensors((ih, iw, r, s, c, m, stride) in arb_conv_dims()) {
        let l = Layer::conv("p", ih, iw, r, s, c, m, stride);
        prop_assert_eq!(
            l.total_bytes(),
            l.ifmap_bytes() + l.filter_bytes() + l.ofmap_bytes()
        );
    }

    #[test]
    fn larger_stride_never_increases_output((ih, iw, r, s, c, m, _stride) in arb_conv_dims()) {
        let l1 = Layer::conv("p", ih, iw, r, s, c, m, 1);
        let l2 = Layer::conv("p", ih, iw, r, s, c, m, 2);
        prop_assert!(l2.ofmap_bytes() <= l1.ofmap_bytes());
    }
}
