//! Property-based tests for the metadata cache and protection schemes.

use proptest::prelude::*;
use seda_protect::{
    BlockMacKind, BlockMacScheme, LayerMacStore, MetaCache, MetaLayout, ProtectionScheme,
    SedaScheme, Unprotected,
};
use seda_scalesim::{Burst, TensorKind};
use std::collections::HashSet;

const GIB: u64 = 1 << 30;

fn arb_burst() -> impl Strategy<Value = Burst> {
    (0u64..(1 << 22), 1u64..8192, any::<bool>(), 0u32..3).prop_map(
        |(addr, bytes, is_write, layer)| Burst {
            addr,
            bytes,
            is_write,
            tensor: if is_write {
                TensorKind::Ofmap
            } else {
                TensorKind::Ifmap
            },
            layer,
        },
    )
}

proptest! {
    #[test]
    fn cache_never_reports_phantom_hits(accesses in prop::collection::vec((0u64..(1 << 16), any::<bool>()), 1..300)) {
        // A hit may only occur for a line seen before (no capacity grows it).
        let mut cache = MetaCache::new(2048, 64, 4);
        let mut seen = HashSet::new();
        for (addr, w) in accesses {
            let line = addr / 64;
            let acc = cache.access(addr, w);
            if acc.hit {
                prop_assert!(seen.contains(&line), "hit on never-seen line {line}");
            }
            seen.insert(line);
        }
    }

    #[test]
    fn cache_writebacks_only_for_dirty_lines(accesses in prop::collection::vec((0u64..(1 << 14), any::<bool>()), 1..300)) {
        let mut cache = MetaCache::new(1024, 64, 2);
        let mut dirtied = HashSet::new();
        for (addr, w) in accesses {
            let acc = cache.access(addr, w);
            if let Some(wb) = acc.writeback {
                prop_assert!(dirtied.contains(&(wb / 64)), "writeback of clean line");
                dirtied.remove(&(wb / 64));
            }
            if w {
                dirtied.insert(addr / 64);
            }
        }
        for wb in cache.flush() {
            prop_assert!(dirtied.contains(&(wb / 64)));
        }
    }

    #[test]
    fn layout_regions_never_overlap(protected in (1u64..64).prop_map(|g| g * GIB / 4),
                                    granularity in prop_oneof![Just(64u64), Just(128), Just(512), Just(4096)]) {
        let l = MetaLayout::new(protected, granularity);
        // MAC region ends where VN region begins.
        let mac_end = l.mac_base + protected / granularity * 8;
        prop_assert!(mac_end <= l.vn_base);
        // Tree levels are disjoint and ascending.
        let mut prev_end = l.vn_base + l.vn_lines * 64;
        for (i, &base) in l.tree_level_base.iter().enumerate() {
            prop_assert!(base >= prev_end, "level {i} overlaps predecessor");
            let nodes = if i + 1 < l.tree_level_base.len() {
                l.tree_level_base[i + 1] - base
            } else {
                64
            };
            prev_end = base + nodes;
        }
    }

    #[test]
    fn tree_paths_end_at_single_top(protected in (1u64..16).prop_map(|g| g * GIB),
                                    a in 0u64..(1 << 30), b in 0u64..(1 << 30)) {
        let l = MetaLayout::new(protected, 64);
        let pa = l.tree_path(a % protected);
        let pb = l.tree_path(b % protected);
        prop_assert_eq!(pa.last(), pb.last(), "all paths converge below the root");
        // Paths are strictly level-ascending in address.
        for w in pa.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn sgx_request_set_superset_of_mgx(bursts in prop::collection::vec(arb_burst(), 1..30)) {
        // SGX = MGX + VN + tree: its tally components dominate MGX's.
        let mut sgx = BlockMacScheme::new(BlockMacKind::Sgx, 64, 16 * GIB);
        let mut mgx = BlockMacScheme::new(BlockMacKind::Mgx, 64, 16 * GIB);
        let mut sink = |_r| {};
        for b in &bursts {
            sgx.transform(b, &mut sink);
            mgx.transform(b, &mut sink);
        }
        sgx.finish(&mut sink);
        mgx.finish(&mut sink);
        let (s, m) = (sgx.breakdown(), mgx.breakdown());
        prop_assert_eq!(s.demand(), m.demand());
        prop_assert_eq!(s.overfetch_read, m.overfetch_read);
        prop_assert_eq!(s.mac_read, m.mac_read);
        prop_assert!(s.vn_read > 0 || bursts.is_empty() || s.demand() == 0);
        prop_assert_eq!(m.vn_read + m.tree_read, 0);
    }

    #[test]
    fn overfetch_is_zero_iff_block_aligned(addr_blocks in 0u64..1000, len_blocks in 1u64..64) {
        // A 512 B-aligned burst of whole blocks needs no fill.
        let mut s = BlockMacScheme::new(BlockMacKind::Mgx, 512, GIB);
        let aligned = Burst::read(addr_blocks * 512, len_blocks * 512, TensorKind::Ifmap, 0);
        s.transform(&aligned, &mut |_| {});
        prop_assert_eq!(s.breakdown().overfetch_read, 0);
        // Offsetting by one line forces fills at both edges.
        let mut s2 = BlockMacScheme::new(BlockMacKind::Mgx, 512, GIB);
        let unaligned = Burst::read(addr_blocks * 512 + 64, len_blocks * 512, TensorKind::Ifmap, 0);
        s2.transform(&unaligned, &mut |_| {});
        prop_assert!(s2.breakdown().overfetch_read > 0);
    }

    #[test]
    fn baseline_equals_demand_grid(bursts in prop::collection::vec(arb_burst(), 0..40)) {
        let mut u = Unprotected::new();
        let mut count = 0u64;
        for b in &bursts {
            u.transform(b, &mut |_| count += 1);
        }
        let expected: u64 = bursts
            .iter()
            .map(|b| (b.end().div_ceil(64) * 64 - b.addr / 64 * 64) / 64)
            .sum();
        prop_assert_eq!(count, expected);
    }

    #[test]
    fn seda_requests_are_demand_plus_layer_lines(bursts in prop::collection::vec(arb_burst(), 1..40)) {
        let mut seda = SedaScheme::new(LayerMacStore::OffChip, GIB);
        let mut base = Unprotected::new();
        let (mut n_seda, mut n_base) = (0u64, 0u64);
        for b in &bursts {
            seda.transform(b, &mut |_| n_seda += 1);
            base.transform(b, &mut |_| n_base += 1);
        }
        seda.finish(&mut |_| n_seda += 1);
        prop_assert_eq!(n_seda - n_base, seda.breakdown().layer_mac / 64);
    }
}
