//! Memory-protection schemes for DNN accelerators.
//!
//! This crate models how each protection scheme of the SeDA evaluation
//! (§IV, Table III) rewrites an accelerator's demand traffic into actual
//! DRAM requests:
//!
//! * [`scheme::Unprotected`] — the normalization baseline.
//! * [`block_mac::BlockMacScheme`] — SGX flavour (MAC + VN + integrity
//!   tree through 8 KB/16 KB LRU caches) and MGX flavour (MAC only, VNs
//!   on-chip), each at 64 B or 512 B protection granularity.
//! * [`securator::SecuratorScheme`] — a Securator-style layer-level
//!   XOR-MAC check (32 B blocks, no position binding), kept for the
//!   security ablations and the redundant-hash-work comparison.
//! * [`seda::SedaScheme`] — SeDA's multi-level integrity verification:
//!   on-chip VNs, tiling-matched optBlk MACs folded into layer MACs, and
//!   an on-chip model MAC; layer MACs optionally stored off-chip for the
//!   paper's fairness configuration.
//!
//! Every scheme implements [`scheme::ProtectionScheme`], turning
//! [`seda_scalesim::Burst`]s into [`seda_dram::Request`]s while tallying a
//! [`scheme::TrafficBreakdown`] per category (demand, overfetch, MAC, VN,
//! tree, layer MAC) — the decomposition behind Fig. 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block_mac;
pub mod cache;
pub mod error;
pub mod layout;
pub mod scheme;
pub mod securator;
pub mod seda;
pub mod verifier;
pub mod vn;

pub use block_mac::{BlockMacKind, BlockMacScheme};
pub use cache::MetaCache;
pub use error::ProtectError;
pub use layout::MetaLayout;
pub use scheme::{ProtectionScheme, SchemeInfo, TrafficBreakdown, Unprotected};
pub use securator::SecuratorScheme;
pub use seda::{LayerMacStore, SedaScheme};
pub use verifier::HashEngine;
pub use vn::OnChipVn;

/// The paper's protected-region size (16 GB, §IV-A).
pub const PROTECTED_BYTES: u64 = 16 << 30;

/// Builds the full scheme lineup of Fig. 5/6: baseline, SGX-64B, SGX-512B,
/// MGX-64B, MGX-512B, SeDA (layer MACs off-chip).
pub fn paper_lineup() -> Vec<Box<dyn ProtectionScheme>> {
    vec![
        Box::new(Unprotected::new()),
        Box::new(BlockMacScheme::new(BlockMacKind::Sgx, 64, PROTECTED_BYTES)),
        Box::new(BlockMacScheme::new(BlockMacKind::Sgx, 512, PROTECTED_BYTES)),
        Box::new(BlockMacScheme::new(BlockMacKind::Mgx, 64, PROTECTED_BYTES)),
        Box::new(BlockMacScheme::new(BlockMacKind::Mgx, 512, PROTECTED_BYTES)),
        Box::new(SedaScheme::new(LayerMacStore::OffChip, PROTECTED_BYTES)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_matches_figure_order() {
        let names: Vec<String> = paper_lineup().iter().map(|s| s.name().to_owned()).collect();
        assert_eq!(
            names,
            ["baseline", "SGX-64B", "SGX-512B", "MGX-64B", "MGX-512B", "SeDA"]
        );
    }
}

/// Builds a scheme from its Fig. 5/6 label (`"baseline"`, `"SGX-64B"`,
/// `"SGX-512B"`, `"MGX-64B"`, `"MGX-512B"`, `"SeDA"`, or `"Securator"`).
/// Returns `None` for unknown labels.
pub fn scheme_by_name(name: &str) -> Option<Box<dyn ProtectionScheme>> {
    Some(match name {
        "baseline" => Box::new(Unprotected::new()),
        "SGX-64B" => Box::new(BlockMacScheme::new(BlockMacKind::Sgx, 64, PROTECTED_BYTES)),
        "SGX-512B" => Box::new(BlockMacScheme::new(BlockMacKind::Sgx, 512, PROTECTED_BYTES)),
        "MGX-64B" => Box::new(BlockMacScheme::new(BlockMacKind::Mgx, 64, PROTECTED_BYTES)),
        "MGX-512B" => Box::new(BlockMacScheme::new(BlockMacKind::Mgx, 512, PROTECTED_BYTES)),
        "SeDA" => Box::new(SedaScheme::new(LayerMacStore::OffChip, PROTECTED_BYTES)),
        "Securator" => Box::new(SecuratorScheme::new(PROTECTED_BYTES)),
        _ => return None,
    })
}

/// [`scheme_by_name`] with a typed error for unknown labels.
///
/// # Errors
///
/// Returns [`ProtectError::UnknownScheme`] when `name` is not in the
/// registry.
pub fn try_scheme_by_name(name: &str) -> Result<Box<dyn ProtectionScheme>, ProtectError> {
    scheme_by_name(name).ok_or_else(|| ProtectError::UnknownScheme {
        name: name.to_owned(),
    })
}

#[cfg(test)]
mod name_tests {
    use super::*;

    #[test]
    fn every_lineup_name_resolves() {
        for s in paper_lineup() {
            let rebuilt = scheme_by_name(s.name()).expect("lineup names resolve");
            assert_eq!(rebuilt.name(), s.name());
        }
        assert!(scheme_by_name("Securator").is_some());
        assert!(scheme_by_name("nope").is_none());
    }

    #[test]
    fn unknown_scheme_is_a_typed_error() {
        assert!(try_scheme_by_name("SeDA").is_ok());
        assert_eq!(
            try_scheme_by_name("nope").err(),
            Some(ProtectError::UnknownScheme {
                name: "nope".to_owned()
            })
        );
    }
}
