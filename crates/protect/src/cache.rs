//! Set-associative LRU metadata cache.
//!
//! SGX-style schemes keep version-number and MAC lines in small on-chip
//! caches (the paper configures 16 KB VN + 8 KB MAC caches, LRU,
//! write-back, write-allocate). The model tracks hit/miss/eviction
//! behaviour per line without storing payload bytes.

use std::collections::HashMap;

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was already resident.
    pub hit: bool,
    /// Address of a dirty line written back to make room, if any.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    dirty: bool,
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache model.
///
/// # Examples
///
/// ```
/// use seda_protect::cache::MetaCache;
///
/// let mut c = MetaCache::new(1024, 64, 4);
/// assert!(!c.access(0, false).hit);
/// assert!(c.access(0, false).hit);
/// ```
#[derive(Debug, Clone)]
pub struct MetaCache {
    line_bytes: u64,
    sets: u64,
    ways: usize,
    storage: HashMap<u64, Vec<Way>>,
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl MetaCache {
    /// Creates a cache of `capacity_bytes` with `line_bytes` lines and
    /// `ways`-way associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, capacity not a
    /// multiple of `line_bytes × ways`).
    pub fn new(capacity_bytes: u64, line_bytes: u64, ways: usize) -> Self {
        assert!(line_bytes > 0 && ways > 0, "degenerate cache geometry");
        let lines = capacity_bytes / line_bytes;
        assert!(
            lines >= ways as u64 && lines.is_multiple_of(ways as u64),
            "capacity must be a multiple of line_bytes*ways"
        );
        Self {
            line_bytes,
            sets: lines / ways as u64,
            ways,
            storage: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Accesses the line containing `addr`; `is_write` marks it dirty.
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheAccess {
        self.tick += 1;
        let line = addr / self.line_bytes;
        let set = line % self.sets;
        let tick = self.tick;
        let ways = self.ways;
        let set_ways = self.storage.entry(set).or_default();

        if let Some(w) = set_ways.iter_mut().find(|w| w.tag == line) {
            w.lru = tick;
            w.dirty |= is_write;
            self.hits += 1;
            return CacheAccess {
                hit: true,
                writeback: None,
            };
        }

        self.misses += 1;
        let mut writeback = None;
        if set_ways.len() == ways {
            // Invariant: this branch only runs when `set_ways.len() == ways`
            // and `ways > 0`, so `min_by_key` always finds a victim.
            #[allow(clippy::expect_used)]
            let victim = set_ways
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .expect("full set has ways");
            let v = set_ways.swap_remove(victim);
            if v.dirty {
                writeback = Some(v.tag * self.line_bytes);
                self.writebacks += 1;
            }
        }
        set_ways.push(Way {
            tag: line,
            dirty: is_write,
            lru: tick,
        });
        CacheAccess {
            hit: false,
            writeback,
        }
    }

    /// Flushes all dirty lines, returning their addresses.
    pub fn flush(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        for ways in self.storage.values_mut() {
            for w in ways.iter_mut() {
                if w.dirty {
                    out.push(w.tag * self.line_bytes);
                    w.dirty = false;
                }
            }
        }
        self.writebacks += out.len() as u64;
        out.sort_unstable();
        out
    }

    /// (hits, misses, writebacks) so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.writebacks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_oldest() {
        // 2 lines, 2 ways, 1 set.
        let mut c = MetaCache::new(128, 64, 2);
        c.access(0, false);
        c.access(64, false);
        c.access(0, false); // refresh line 0
        let a = c.access(128, false); // evicts line 64 (oldest)
        assert!(!a.hit);
        assert!(c.access(0, false).hit, "line 0 must survive");
        assert!(!c.access(64, false).hit, "line 64 was evicted");
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = MetaCache::new(128, 64, 2);
        c.access(0, true);
        c.access(64, false);
        c.access(128, false); // evict dirty line 0
                              // line 0 was LRU and dirty.
        let third = c.access(192, false);
        // One of the two evictions so far wrote back address 0.
        let (_, _, wbs) = c.stats();
        assert_eq!(wbs, 1);
        let _ = third;
    }

    #[test]
    fn flush_returns_dirty_lines_once() {
        let mut c = MetaCache::new(1024, 64, 4);
        c.access(0, true);
        c.access(64, false);
        c.access(128, true);
        let mut d = c.flush();
        d.sort_unstable();
        assert_eq!(d, vec![0, 128]);
        assert!(c.flush().is_empty(), "second flush finds nothing dirty");
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = MetaCache::new(256, 64, 1); // 4 sets, direct-mapped
        c.access(0, false);
        c.access(64, false);
        assert!(c.access(0, false).hit);
        assert!(c.access(64, false).hit);
    }

    #[test]
    fn same_set_conflict_in_direct_mapped() {
        let mut c = MetaCache::new(256, 64, 1); // 4 sets
        c.access(0, false);
        c.access(256, false); // same set as 0
        assert!(!c.access(0, false).hit);
    }

    #[test]
    #[should_panic(expected = "multiple of line_bytes")]
    fn bad_geometry_rejected() {
        let _ = MetaCache::new(100, 64, 2);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = MetaCache::new(1024, 64, 4);
        c.access(0, false);
        c.access(0, false);
        c.access(64, false);
        let (h, m, _) = c.stats();
        assert_eq!((h, m), (1, 2));
    }
}
