//! Typed errors for the protection layer.
//!
//! Construction and lookup paths that used to panic (`HashEngine::new`
//! with a non-positive throughput, `OnChipVn` misuse, unknown scheme
//! names) now have fallible counterparts returning [`ProtectError`], so a
//! malformed configuration degrades into a typed error instead of taking
//! the process down. The panicking wrappers remain for infallible call
//! sites that validate their inputs up front.

use std::error::Error;
use std::fmt;

/// An error from the protection layer: invalid configuration or misuse of
/// the on-chip state machines.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtectError {
    /// A hash engine was configured with a non-positive throughput.
    InvalidVerifier {
        /// The rejected throughput, in bytes per cycle.
        bytes_per_cycle: f64,
    },
    /// A version number was requested for a layer outside the model.
    LayerOutOfRange {
        /// The requested layer index.
        layer: u32,
        /// Number of layers the generator was built for.
        layers: u32,
    },
    /// A version number was requested before any inference began.
    NoInferenceBegun,
    /// A scheme name not present in the registry.
    UnknownScheme {
        /// The unresolvable name.
        name: String,
    },
}

impl fmt::Display for ProtectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtectError::InvalidVerifier { bytes_per_cycle } => {
                write!(
                    f,
                    "hash engine throughput must be positive, got {bytes_per_cycle}"
                )
            }
            ProtectError::LayerOutOfRange { layer, layers } => {
                write!(f, "layer {layer} out of range (model has {layers} layers)")
            }
            ProtectError::NoInferenceBegun => {
                write!(f, "no inference begun: call begin_inference first")
            }
            ProtectError::UnknownScheme { name } => {
                write!(f, "unknown protection scheme {name:?}")
            }
        }
    }
}

impl Error for ProtectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = ProtectError::LayerOutOfRange {
            layer: 9,
            layers: 5,
        };
        assert!(e.to_string().contains("layer 9"));
        assert!(e.to_string().contains("5 layers"));
        let e = ProtectError::UnknownScheme {
            name: "nope".to_owned(),
        };
        assert!(e.to_string().contains("nope"));
        let _: &dyn Error = &e;
    }
}
