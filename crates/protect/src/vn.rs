//! On-chip version-number generation (the MGX insight SeDA inherits).
//!
//! CTR-mode security requires that a `(PA, VN)` pair is never reused under
//! one key. General-purpose processors must *store* VNs off-chip because
//! writes are unpredictable; DNN inference is deterministic, so the VN of
//! any block is a function of application state the accelerator already
//! tracks: which inference this is, and which layer is writing. No VN is
//! ever fetched, and no integrity tree is needed to protect stored VNs —
//! that is where SGX's 12.5%+ traffic goes.
//!
//! The generator models the double-buffered activation scheme of
//! [`seda_scalesim::AddressMap`]: two ping-pong buffers, each written by
//! every second layer. The VN of an activation write is derived from the
//! global count of writes to that buffer; weights use the model's
//! provisioning version.

use crate::error::ProtectError;
use serde::{Deserialize, Serialize};

/// On-chip version-number generator for one accelerator.
///
/// # Examples
///
/// ```
/// use seda_protect::vn::OnChipVn;
///
/// let mut vn = OnChipVn::new(18, 1); // ResNet-18, model version 1
/// vn.begin_inference();
/// let first = vn.activation_vn(0);
/// vn.begin_inference();
/// assert_ne!(first, vn.activation_vn(0), "no reuse across inferences");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnChipVn {
    layers: u32,
    model_version: u64,
    /// Completed `begin_inference` calls.
    epoch: u64,
}

impl OnChipVn {
    /// Creates a generator for a model of `layers` layers provisioned at
    /// `model_version`.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is zero.
    pub fn new(layers: u32, model_version: u64) -> Self {
        assert!(layers > 0, "model must have layers");
        Self {
            layers,
            model_version,
            epoch: 0,
        }
    }

    /// Starts a new inference, bumping the epoch all activation VNs derive
    /// from. Returns the new epoch.
    pub fn begin_inference(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// VN for weight blocks: constant per provisioning (weights are
    /// written once, off-line).
    pub fn weight_vn(&self) -> u64 {
        self.model_version
    }

    /// VN for the ofmap writes of `layer` in the current inference.
    ///
    /// Each layer writes its ping-pong buffer exactly once per inference,
    /// so `(epoch, layer)` enumerates that buffer's write events; the pair
    /// is packed into one monotone counter.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range or no inference has begun; use
    /// [`try_activation_vn`](Self::try_activation_vn) to handle these as
    /// typed errors.
    pub fn activation_vn(&self, layer: u32) -> u64 {
        assert!(layer < self.layers, "layer {layer} out of range");
        assert!(self.epoch > 0, "call begin_inference first");
        self.epoch * u64::from(self.layers) + u64::from(layer)
    }

    /// Fallible [`activation_vn`](Self::activation_vn): misuse becomes a
    /// typed [`ProtectError`] instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`ProtectError::LayerOutOfRange`] or
    /// [`ProtectError::NoInferenceBegun`].
    pub fn try_activation_vn(&self, layer: u32) -> Result<u64, ProtectError> {
        if layer >= self.layers {
            return Err(ProtectError::LayerOutOfRange {
                layer,
                layers: self.layers,
            });
        }
        if self.epoch == 0 {
            return Err(ProtectError::NoInferenceBegun);
        }
        Ok(self.epoch * u64::from(self.layers) + u64::from(layer))
    }

    /// The VN the *reader* of layer `layer`'s ifmap must use: the VN its
    /// producer (layer − 1) wrote, or the input epoch VN for layer 0.
    pub fn ifmap_vn(&self, layer: u32) -> u64 {
        if layer == 0 {
            // The host wrote the network input at the start of this epoch.
            self.epoch * u64::from(self.layers)
        } else {
            self.activation_vn(layer - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn activation_vns_never_repeat_per_buffer() {
        // Buffer A is written by even layers, buffer B by odd layers; over
        // many inferences no (buffer, VN) pair may repeat.
        let mut gen = OnChipVn::new(7, 1);
        let mut seen_a = HashSet::new();
        let mut seen_b = HashSet::new();
        for _ in 0..50 {
            gen.begin_inference();
            for layer in 0..7 {
                let vn = gen.activation_vn(layer);
                let fresh = if layer % 2 == 0 {
                    seen_a.insert(vn)
                } else {
                    seen_b.insert(vn)
                };
                assert!(fresh, "VN {vn} reused for layer {layer}");
            }
        }
    }

    #[test]
    fn reader_sees_producer_vn() {
        let mut gen = OnChipVn::new(5, 1);
        gen.begin_inference();
        for layer in 1..5 {
            assert_eq!(gen.ifmap_vn(layer), gen.activation_vn(layer - 1));
        }
    }

    #[test]
    fn weight_vn_is_stable_across_inferences() {
        let mut gen = OnChipVn::new(3, 42);
        gen.begin_inference();
        let w0 = gen.weight_vn();
        gen.begin_inference();
        assert_eq!(gen.weight_vn(), w0);
        assert_eq!(w0, 42);
    }

    #[test]
    fn epochs_are_monotone() {
        let mut gen = OnChipVn::new(3, 0);
        let e1 = gen.begin_inference();
        let e2 = gen.begin_inference();
        assert!(e2 > e1);
    }

    #[test]
    #[should_panic(expected = "begin_inference")]
    fn using_before_first_inference_panics() {
        let gen = OnChipVn::new(3, 0);
        let _ = gen.activation_vn(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_layer_panics() {
        let mut gen = OnChipVn::new(3, 0);
        gen.begin_inference();
        let _ = gen.activation_vn(3);
    }

    #[test]
    fn try_activation_vn_returns_typed_errors() {
        let mut gen = OnChipVn::new(3, 0);
        assert_eq!(
            gen.try_activation_vn(0),
            Err(ProtectError::NoInferenceBegun)
        );
        gen.begin_inference();
        assert_eq!(
            gen.try_activation_vn(5),
            Err(ProtectError::LayerOutOfRange {
                layer: 5,
                layers: 3
            })
        );
        assert_eq!(gen.try_activation_vn(1), Ok(gen.activation_vn(1)));
    }
}
