//! SeDA's multi-level integrity protection scheme (paper §III-C).
//!
//! * Version numbers are generated on-chip from DNN semantics (as in MGX),
//!   so no VN or integrity-tree traffic exists.
//! * optBlk MACs are computed on the fly over the streamed data, at a
//!   granularity matched to the layer's tile runs (no alignment overfetch,
//!   no read-modify-write), and XOR-folded into a per-layer MAC.
//! * Layer MACs live in on-chip SRAM in the ideal configuration; the
//!   paper's headline experiments store them **off-chip for fairness**,
//!   costing one 64 B line read and write per layer — the "near-zero"
//!   0.03-0.12% of Fig. 5.
//! * The model MAC (one tag over all weights) is on-chip and free.

use crate::layout::LINE_BYTES;
use crate::scheme::{emit_demand, ProtectionScheme, SchemeInfo, TrafficBreakdown};
use seda_dram::Request;
use seda_scalesim::Burst;
use std::collections::BTreeSet;

/// Where layer MACs are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerMacStore {
    /// Layer MACs in on-chip SRAM: zero off-chip metadata traffic.
    OnChip,
    /// Layer MACs off-chip (the paper's fairness configuration): one line
    /// read on first touch of a layer, one line written when it retires.
    OffChip,
}

/// The SeDA protection scheme.
///
/// # Examples
///
/// ```
/// use seda_protect::seda::{LayerMacStore, SedaScheme};
/// use seda_protect::scheme::ProtectionScheme;
/// use seda_scalesim::{Burst, TensorKind};
///
/// let mut seda = SedaScheme::new(LayerMacStore::OffChip, 16 << 30);
/// let mut reqs = Vec::new();
/// seda.transform(&Burst::read(0, 1 << 20, TensorKind::Filter, 0), &mut |r| reqs.push(r));
/// seda.finish(&mut |r| reqs.push(r));
/// let b = seda.breakdown();
/// assert!(b.metadata() <= 2 * 64, "one layer: at most one line each way");
/// ```
#[derive(Debug, Clone)]
pub struct SedaScheme {
    store: LayerMacStore,
    layer_mac_base: u64,
    /// Layers with an in-flight MAC accumulator. A burst stream may
    /// interleave layers (double-buffered prefetch overlaps layer `i+1`'s
    /// fetch with layer `i`'s drain), so several layers can be open at
    /// once; each fetches its expected MAC exactly once on first touch and
    /// writes the accumulated MAC back exactly once when it retires.
    open_layers: BTreeSet<u32>,
    tally: TrafficBreakdown,
}

impl SedaScheme {
    /// Creates a SeDA scheme over a `protected_bytes` region.
    pub fn new(store: LayerMacStore, protected_bytes: u64) -> Self {
        Self {
            store,
            // Layer MACs live above all data and metadata arrays.
            layer_mac_base: protected_bytes * 2,
            open_layers: BTreeSet::new(),
            tally: TrafficBreakdown::default(),
        }
    }

    fn layer_mac_line(&self, layer: u32) -> u64 {
        self.layer_mac_base + u64::from(layer) * LINE_BYTES
    }

    fn enter_layer(&mut self, layer: u32, sink: &mut dyn FnMut(Request)) {
        if !self.open_layers.insert(layer) {
            return;
        }
        seda_telemetry::counter_add("protect.seda.layers_opened", 1);
        if self.store == LayerMacStore::OffChip {
            // Fetch the expected layer MAC for verification (first touch).
            sink(Request::read(self.layer_mac_line(layer)));
            self.tally.layer_mac += LINE_BYTES;
        }
    }
}

impl ProtectionScheme for SedaScheme {
    fn name(&self) -> &str {
        "SeDA"
    }

    fn info(&self) -> SchemeInfo {
        SchemeInfo {
            name: "SeDA".to_owned(),
            encryption_granularity: "bandwidth-aware (B-AES)".to_owned(),
            integrity_granularity: "multi-level (optBlk/layer/model)".to_owned(),
            offchip_metadata: match self.store {
                LayerMacStore::OnChip => "none".to_owned(),
                LayerMacStore::OffChip => "layer MAC (minimal)".to_owned(),
            },
            tiling_aware: true,
            encryption_scalable: true,
        }
    }

    fn transform(&mut self, burst: &Burst, sink: &mut dyn FnMut(Request)) {
        self.enter_layer(burst.layer, sink);
        // optBlk MACs are sized to the burst's runs: every fetched byte is
        // demand, every block MAC folds into the on-chip accumulator.
        emit_demand(burst, &mut self.tally, sink);
    }

    fn finish(&mut self, sink: &mut dyn FnMut(Request)) {
        // All still-open layers retire: each accumulated MAC is written
        // back once, in layer order for deterministic traces.
        if self.store == LayerMacStore::OffChip {
            for layer in &self.open_layers {
                sink(Request::write(self.layer_mac_line(*layer)));
                self.tally.layer_mac += LINE_BYTES;
            }
        }
        self.open_layers.clear();
    }

    fn breakdown(&self) -> TrafficBreakdown {
        self.tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_scalesim::TensorKind;

    #[test]
    fn onchip_layer_macs_cost_nothing() {
        let mut s = SedaScheme::new(LayerMacStore::OnChip, 1 << 30);
        let mut reqs = Vec::new();
        for layer in 0..10 {
            s.transform(&Burst::read(0, 4096, TensorKind::Ifmap, layer), &mut |r| {
                reqs.push(r)
            });
        }
        s.finish(&mut |r| reqs.push(r));
        assert_eq!(s.breakdown().metadata(), 0);
    }

    #[test]
    fn offchip_layer_macs_cost_two_lines_per_layer() {
        let mut s = SedaScheme::new(LayerMacStore::OffChip, 1 << 30);
        let mut reqs = Vec::new();
        for layer in 0..10 {
            for _ in 0..5 {
                s.transform(&Burst::read(0, 4096, TensorKind::Ifmap, layer), &mut |r| {
                    reqs.push(r)
                });
            }
        }
        s.finish(&mut |r| reqs.push(r));
        assert_eq!(s.breakdown().layer_mac, 10 * 2 * 64);
    }

    #[test]
    fn overhead_is_near_zero() {
        let mut s = SedaScheme::new(LayerMacStore::OffChip, 1 << 30);
        let mut n = 0u64;
        for layer in 0..50 {
            s.transform(
                &Burst::read(0, 1 << 20, TensorKind::Filter, layer),
                &mut |_| n += 1,
            );
        }
        s.finish(&mut |_| n += 1);
        let b = s.breakdown();
        let overhead = b.total() as f64 / b.demand() as f64 - 1.0;
        assert!(overhead < 0.002, "SeDA overhead {overhead}");
    }

    #[test]
    fn no_overfetch_ever() {
        let mut s = SedaScheme::new(LayerMacStore::OffChip, 1 << 30);
        let mut reqs = Vec::new();
        // Unaligned, short, partial-everything write.
        s.transform(&Burst::write(100, 7, TensorKind::Ofmap, 3), &mut |r| {
            reqs.push(r)
        });
        assert_eq!(s.breakdown().overfetch_read, 0);
    }

    #[test]
    fn layer_macs_have_distinct_lines() {
        let s = SedaScheme::new(LayerMacStore::OffChip, 1 << 30);
        assert_ne!(s.layer_mac_line(0), s.layer_mac_line(1));
    }

    #[test]
    fn interleaved_layers_still_cost_two_lines_each() {
        // Regression: a double-buffered trace alternates layers on every
        // burst. The old single-`current_layer` tracking retired and
        // refetched the layer MAC on each switch, overcounting `layer_mac`
        // by one line pair per switch; open-layer tracking pays exactly
        // one read and one write per distinct layer regardless of order.
        let mut s = SedaScheme::new(LayerMacStore::OffChip, 1 << 30);
        let mut reqs = Vec::new();
        for round in 0..50 {
            for layer in [0u32, 1] {
                s.transform(
                    &Burst::read((round * 4096) as u64, 4096, TensorKind::Ifmap, layer),
                    &mut |r| reqs.push(r),
                );
            }
        }
        s.finish(&mut |r| reqs.push(r));
        assert_eq!(s.breakdown().layer_mac, 2 * 2 * 64);
        // One MAC-line read per layer and one write per layer, no more.
        let meta: Vec<_> = reqs.iter().filter(|r| r.addr >= 2 * (1 << 30)).collect();
        assert_eq!(meta.len(), 4);
        assert_eq!(meta.iter().filter(|r| r.is_write).count(), 2);
    }

    #[test]
    fn sequential_traces_match_pre_fix_accounting() {
        // Open-layer tracking must not change the cost of the common
        // sequential (non-interleaved) trace: still two lines per layer.
        let mut s = SedaScheme::new(LayerMacStore::OffChip, 1 << 30);
        let mut n = 0u64;
        for layer in 0..7 {
            s.transform(&Burst::read(0, 4096, TensorKind::Ifmap, layer), &mut |_| {
                n += 1
            });
        }
        s.finish(&mut |_| n += 1);
        assert_eq!(s.breakdown().layer_mac, 7 * 2 * 64);
    }
}
