//! Integrity-verification engine timing model.
//!
//! A pipelined hash engine (SHA-2/GHASH-class) authenticates off-chip data
//! as it streams in. This module answers whether the verifier ever becomes
//! the bottleneck, and what latency a layer-level check exposes:
//!
//! * per-block schemes (SGX/MGX) verify each protection block as it
//!   arrives — throughput-bound, fully pipelined with the DRAM stream;
//! * SeDA's layer MAC is checked once per layer, exposing only the drain
//!   latency of the last optBlk plus one fold-and-compare;
//! * the model MAC is checked once per inference.

use crate::error::ProtectError;
use serde::{Deserialize, Serialize};

/// A pipelined hash engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HashEngine {
    /// Sustained authentication throughput in bytes per accelerator cycle.
    pub bytes_per_cycle: f64,
    /// Pipeline latency in cycles from last input byte to tag.
    pub latency_cycles: u64,
}

impl Default for HashEngine {
    fn default() -> Self {
        // A single SHA-256 core sustains ~1 B/cycle; accelerators deploy
        // parallel lanes sized to memory bandwidth. 32 B/cycle at the NPU
        // clock comfortably exceeds both Table II memory systems (the
        // server needs 20 B/cycle at 1 GHz, the edge 3.7 at 2.75 GHz).
        Self {
            bytes_per_cycle: 32.0,
            latency_cycles: 80,
        }
    }
}

impl HashEngine {
    /// Creates an engine model.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive; use
    /// [`try_new`](Self::try_new) to handle that as a typed error.
    pub fn new(bytes_per_cycle: f64, latency_cycles: u64) -> Self {
        assert!(bytes_per_cycle > 0.0, "throughput must be positive");
        Self {
            bytes_per_cycle,
            latency_cycles,
        }
    }

    /// Fallible constructor: rejects non-positive (or NaN) throughput with
    /// a typed [`ProtectError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ProtectError::InvalidVerifier`] if `bytes_per_cycle` is
    /// not a positive finite number.
    pub fn try_new(bytes_per_cycle: f64, latency_cycles: u64) -> Result<Self, ProtectError> {
        if bytes_per_cycle > 0.0 && bytes_per_cycle.is_finite() {
            Ok(Self {
                bytes_per_cycle,
                latency_cycles,
            })
        } else {
            Err(ProtectError::InvalidVerifier { bytes_per_cycle })
        }
    }

    /// Cycles to authenticate `bytes` of streamed data (throughput term
    /// only; the stream overlaps DRAM transfer).
    pub fn stream_cycles(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.bytes_per_cycle).ceil() as u64
    }

    /// Whether this engine keeps up with a memory system moving
    /// `bandwidth` bytes/second at `clock_hz`.
    pub fn keeps_up_with(&self, bandwidth: f64, clock_hz: f64) -> bool {
        self.bytes_per_cycle * clock_hz >= bandwidth
    }

    /// Exposed cycles of a layer-level check: the pipeline drain plus one
    /// aggregate compare — paid once per layer, regardless of layer size.
    pub fn layer_check_exposure(&self) -> u64 {
        self.latency_cycles + 1
    }

    /// Exposed cycles of per-block verification when the verifier is the
    /// bottleneck: the amount by which hashing `bytes` exceeds the time the
    /// memory system needs to deliver them.
    pub fn per_block_exposure(&self, bytes: u64, memory_cycles: u64) -> u64 {
        self.stream_cycles(bytes).saturating_sub(memory_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_engine_covers_both_table2_npus() {
        let e = HashEngine::default();
        // Server: 20 GB/s at 1 GHz; edge: 10 GB/s at 2.75 GHz.
        assert!(e.keeps_up_with(20.0e9, 1.0e9));
        assert!(e.keeps_up_with(10.0e9, 2.75e9));
    }

    #[test]
    fn undersized_engine_is_detected() {
        let e = HashEngine::new(0.5, 80);
        assert!(!e.keeps_up_with(20.0e9, 1.0e9));
    }

    #[test]
    fn layer_check_exposure_is_constant() {
        let e = HashEngine::default();
        assert_eq!(e.layer_check_exposure(), 81);
    }

    #[test]
    fn per_block_exposure_zero_when_memory_bound() {
        let e = HashEngine::default();
        // 4 KB arriving over 4096 memory cycles: engine needs only 128.
        assert_eq!(e.per_block_exposure(4096, 4096), 0);
        // Memory faster than the verifier: exposure appears.
        assert_eq!(e.per_block_exposure(4096, 64), 64);
    }

    #[test]
    fn stream_cycles_round_up() {
        let e = HashEngine::new(3.0, 10);
        assert_eq!(e.stream_cycles(10), 4);
        assert_eq!(e.stream_cycles(0), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_throughput_rejected() {
        let _ = HashEngine::new(0.0, 10);
    }

    #[test]
    fn try_new_returns_typed_error() {
        assert!(HashEngine::try_new(32.0, 80).is_ok());
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            match HashEngine::try_new(bad, 80) {
                Err(ProtectError::InvalidVerifier { bytes_per_cycle }) => {
                    assert!(
                        bytes_per_cycle <= 0.0
                            || bytes_per_cycle.is_nan()
                            || bytes_per_cycle.is_infinite()
                    );
                }
                other => panic!("expected InvalidVerifier, got {other:?}"),
            }
        }
    }
}
