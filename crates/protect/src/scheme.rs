//! The memory-protection scheme interface and the unprotected baseline.
//!
//! A scheme transforms each accelerator demand [`Burst`] into the 64 B
//! DRAM requests actually issued: demand lines, alignment overfetch,
//! read-modify-write fills for partial protection blocks, and metadata
//! (MAC / VN / integrity-tree / layer-MAC) accesses. Byte counts are
//! tallied per category so Fig. 5's traffic decomposition falls out.

use seda_dram::Request;
use seda_scalesim::Burst;
use serde::{Deserialize, Serialize};

/// Line size of all emitted requests.
pub const LINE_BYTES: u64 = 64;

/// Traffic tally per category, in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficBreakdown {
    /// Demand reads (bytes the accelerator asked for, 64 B-grid aligned).
    pub demand_read: u64,
    /// Demand writes.
    pub demand_write: u64,
    /// Extra reads from protection-granularity alignment (overfetch and
    /// read-modify-write fills of partial blocks).
    pub overfetch_read: u64,
    /// MAC line reads.
    pub mac_read: u64,
    /// MAC line writes (write-allocate fills count as reads).
    pub mac_write: u64,
    /// Version-number line reads.
    pub vn_read: u64,
    /// Version-number line writebacks.
    pub vn_write: u64,
    /// Integrity-tree node reads.
    pub tree_read: u64,
    /// Integrity-tree node writebacks.
    pub tree_write: u64,
    /// Layer-MAC traffic (SeDA's off-chip layer MACs).
    pub layer_mac: u64,
}

impl TrafficBreakdown {
    /// Total bytes moved.
    pub fn total(&self) -> u64 {
        self.demand_read + self.demand_write + self.overfetch_read + self.metadata()
    }

    /// Metadata bytes (everything that is not demand or overfetch).
    pub fn metadata(&self) -> u64 {
        self.mac_read
            + self.mac_write
            + self.vn_read
            + self.vn_write
            + self.tree_read
            + self.tree_write
            + self.layer_mac
    }

    /// Demand bytes on the 64 B grid.
    pub fn demand(&self) -> u64 {
        self.demand_read + self.demand_write
    }

    /// Traffic normalized to a baseline's total (Fig. 5's metric).
    pub fn normalized_to(&self, baseline: &TrafficBreakdown) -> f64 {
        self.total() as f64 / baseline.total() as f64
    }
}

/// Qualitative descriptor of a scheme (Table III row).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeInfo {
    /// Scheme label, e.g. `"SGX-64B"`.
    pub name: String,
    /// Encryption granularity description.
    pub encryption_granularity: String,
    /// Integrity granularity description.
    pub integrity_granularity: String,
    /// Off-chip metadata kinds fetched per access.
    pub offchip_metadata: String,
    /// Whether the scheme adapts to DNN tiling patterns.
    pub tiling_aware: bool,
    /// Whether encryption bandwidth scales without replicating engines.
    pub encryption_scalable: bool,
}

/// A memory-protection scheme that rewrites burst traces.
pub trait ProtectionScheme {
    /// Scheme label (e.g. `"SGX-64B"`).
    fn name(&self) -> &str;

    /// Table III descriptor.
    fn info(&self) -> SchemeInfo;

    /// Expands one demand burst into DRAM requests, passed to `sink` in
    /// issue order.
    fn transform(&mut self, burst: &Burst, sink: &mut dyn FnMut(Request));

    /// Flushes any buffered state (dirty metadata cache lines, final layer
    /// MAC updates) at end of inference.
    fn finish(&mut self, sink: &mut dyn FnMut(Request));

    /// Byte tally per category so far.
    fn breakdown(&self) -> TrafficBreakdown;
}

/// Aligns down to the 64 B request grid.
pub fn line_down(addr: u64) -> u64 {
    addr / LINE_BYTES * LINE_BYTES
}

/// Aligns up to the 64 B request grid.
pub fn line_up(addr: u64) -> u64 {
    addr.div_ceil(LINE_BYTES) * LINE_BYTES
}

/// Emits the demand lines of a burst (64 B grid) and tallies them.
///
/// Returns the `[start, end)` byte span on the line grid.
pub fn emit_demand(
    burst: &Burst,
    tally: &mut TrafficBreakdown,
    sink: &mut dyn FnMut(Request),
) -> (u64, u64) {
    let start = line_down(burst.addr);
    let end = line_up(burst.end());
    let mut a = start;
    while a < end {
        if burst.is_write {
            sink(Request::write(a));
        } else {
            sink(Request::read(a));
        }
        a += LINE_BYTES;
    }
    if burst.is_write {
        tally.demand_write += end - start;
    } else {
        tally.demand_read += end - start;
    }
    (start, end)
}

/// The unprotected baseline: demand lines only.
#[derive(Debug, Clone, Default)]
pub struct Unprotected {
    tally: TrafficBreakdown,
}

impl Unprotected {
    /// Creates the baseline scheme.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ProtectionScheme for Unprotected {
    fn name(&self) -> &str {
        "baseline"
    }

    fn info(&self) -> SchemeInfo {
        SchemeInfo {
            name: "baseline".to_owned(),
            encryption_granularity: "none".to_owned(),
            integrity_granularity: "none".to_owned(),
            offchip_metadata: "none".to_owned(),
            tiling_aware: false,
            encryption_scalable: true,
        }
    }

    fn transform(&mut self, burst: &Burst, sink: &mut dyn FnMut(Request)) {
        emit_demand(burst, &mut self.tally, sink);
    }

    fn finish(&mut self, _sink: &mut dyn FnMut(Request)) {}

    fn breakdown(&self) -> TrafficBreakdown {
        self.tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_scalesim::TensorKind;

    #[test]
    fn demand_expansion_covers_grid() {
        let mut t = TrafficBreakdown::default();
        let mut reqs = Vec::new();
        let b = Burst::read(100, 100, TensorKind::Ifmap, 0);
        let (s, e) = emit_demand(&b, &mut t, &mut |r| reqs.push(r));
        assert_eq!((s, e), (64, 256));
        assert_eq!(reqs.len(), 3);
        assert!(reqs.iter().all(|r| !r.is_write));
        assert_eq!(t.demand_read, 192);
    }

    #[test]
    fn baseline_has_no_metadata() {
        let mut u = Unprotected::new();
        let mut n = 0;
        u.transform(&Burst::write(0, 256, TensorKind::Ofmap, 0), &mut |_| n += 1);
        u.finish(&mut |_| n += 1);
        assert_eq!(n, 4);
        let b = u.breakdown();
        assert_eq!(b.demand_write, 256);
        assert_eq!(b.metadata(), 0);
        assert_eq!(b.total(), 256);
    }

    #[test]
    fn normalization_is_relative() {
        let a = TrafficBreakdown {
            demand_read: 100,
            ..TrafficBreakdown::default()
        };
        let b = TrafficBreakdown { mac_read: 25, ..a };
        assert!((b.normalized_to(&a) - 1.25).abs() < 1e-12);
    }
}
