//! A Securator-style protection scheme (HPCA 2023), modelled as the paper
//! describes it: layer-level freshness/integrity checks that XOR all block
//! MACs of a layer (32 B hash blocks), with counters managed on-chip and
//! parallel T-AES encryption.
//!
//! Two properties distinguish it from SeDA and motivate §III's attacks:
//!
//! * its layer check hashes ciphertext without position binding, so it is
//!   vulnerable to the Re-Permutation Attack (Algorithm 2) — see
//!   `seda-core`'s `attacks::repa`;
//! * its fixed 32 B hash granularity ignores tile overlap, so halo rows
//!   re-fetched by neighbouring strips are re-hashed every time. The
//!   redundant work is tracked in [`SecuratorScheme::redundant_hash_bytes`]
//!   (it costs hash-engine energy, not DRAM traffic).
//!
//! Traffic-wise the scheme is SeDA-like (layer MACs off-chip, one line per
//! layer each way), which is why the paper's Fig. 5/6 lineup focuses on
//! SGX/MGX instead; this implementation exists for the security ablations
//! and the hash-work comparison.

use crate::layout::LINE_BYTES;
use crate::scheme::{emit_demand, ProtectionScheme, SchemeInfo, TrafficBreakdown};
use seda_dram::Request;
use seda_scalesim::{Burst, TensorKind};
use std::collections::HashSet;

/// Securator's fixed hash-block granularity.
pub const HASH_BLOCK: u64 = 32;

/// The Securator-style layer-XOR-MAC scheme.
///
/// # Examples
///
/// ```
/// use seda_protect::securator::SecuratorScheme;
/// use seda_protect::scheme::ProtectionScheme;
/// use seda_scalesim::{Burst, TensorKind};
///
/// let mut s = SecuratorScheme::new(16 << 30);
/// let mut n = 0;
/// s.transform(&Burst::read(0, 4096, TensorKind::Ifmap, 0), &mut |_| n += 1);
/// assert_eq!(s.breakdown().overfetch_read, 0);
/// ```
#[derive(Debug, Clone)]
pub struct SecuratorScheme {
    layer_mac_base: u64,
    current_layer: Option<u32>,
    tally: TrafficBreakdown,
    /// 32 B blocks hashed so far (including re-hashes).
    hash_blocks: u64,
    /// Ifmap blocks seen per layer, to count redundant re-hashes.
    seen_this_layer: HashSet<u64>,
    redundant_hash_bytes: u64,
}

impl SecuratorScheme {
    /// Creates the scheme over a `protected_bytes` region.
    pub fn new(protected_bytes: u64) -> Self {
        Self {
            layer_mac_base: protected_bytes * 2 + (protected_bytes / 2),
            current_layer: None,
            tally: TrafficBreakdown::default(),
            hash_blocks: 0,
            seen_this_layer: HashSet::new(),
            redundant_hash_bytes: 0,
        }
    }

    /// Total bytes hashed by the integrity engine (demand plus re-hashes).
    pub fn hashed_bytes(&self) -> u64 {
        self.hash_blocks * HASH_BLOCK
    }

    /// Bytes re-hashed because tile halos re-fetched data the layer check
    /// had already folded — work SeDA's tiling-aware optBlk avoids.
    pub fn redundant_hash_bytes(&self) -> u64 {
        self.redundant_hash_bytes
    }

    fn switch_layer(&mut self, layer: u32, sink: &mut dyn FnMut(Request)) {
        if self.current_layer == Some(layer) {
            return;
        }
        if self.current_layer.is_some() {
            sink(Request::write(self.layer_mac_line()));
            self.tally.layer_mac += LINE_BYTES;
        }
        self.current_layer = Some(layer);
        self.seen_this_layer.clear();
        sink(Request::read(self.layer_mac_line()));
        self.tally.layer_mac += LINE_BYTES;
    }

    fn layer_mac_line(&self) -> u64 {
        self.layer_mac_base + u64::from(self.current_layer.unwrap_or(0)) * LINE_BYTES
    }
}

impl ProtectionScheme for SecuratorScheme {
    fn name(&self) -> &str {
        "Securator"
    }

    fn info(&self) -> SchemeInfo {
        SchemeInfo {
            name: "Securator".to_owned(),
            encryption_granularity: "16B (4 parallel AES engines)".to_owned(),
            integrity_granularity: "32B blocks XOR-folded per layer".to_owned(),
            offchip_metadata: "layer MAC".to_owned(),
            tiling_aware: false,
            encryption_scalable: false,
        }
    }

    fn transform(&mut self, burst: &Burst, sink: &mut dyn FnMut(Request)) {
        self.switch_layer(burst.layer, sink);
        let (start, end) = emit_demand(burst, &mut self.tally, sink);
        // Every fetched 32 B block is hashed into the layer MAC; re-reads
        // of halo blocks are hashed again (no tiling awareness).
        let blocks = (end - start) / HASH_BLOCK;
        self.hash_blocks += blocks;
        if burst.tensor == TensorKind::Ifmap && !burst.is_write {
            let mut b = start / HASH_BLOCK;
            while b * HASH_BLOCK < end {
                if !self.seen_this_layer.insert(b) {
                    self.redundant_hash_bytes += HASH_BLOCK;
                }
                b += 1;
            }
        }
    }

    fn finish(&mut self, sink: &mut dyn FnMut(Request)) {
        if self.current_layer.is_some() {
            sink(Request::write(self.layer_mac_line()));
            self.tally.layer_mac += LINE_BYTES;
            self.current_layer = None;
        }
        self.seen_this_layer.clear();
    }

    fn breakdown(&self) -> TrafficBreakdown {
        self.tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_is_near_zero_like_seda() {
        let mut s = SecuratorScheme::new(1 << 30);
        let mut n = 0u64;
        for layer in 0..10 {
            s.transform(
                &Burst::read(0, 1 << 20, TensorKind::Filter, layer),
                &mut |_| n += 1,
            );
        }
        s.finish(&mut |_| n += 1);
        let b = s.breakdown();
        assert!(b.metadata() <= 10 * 2 * 64);
        assert_eq!(b.overfetch_read, 0);
    }

    #[test]
    fn halo_rereads_are_counted_as_redundant_hash_work() {
        let mut s = SecuratorScheme::new(1 << 30);
        let mut sink = |_r| {};
        // Strip 1 reads rows [0, 1024); strip 2 re-reads [896, 1920).
        s.transform(&Burst::read(0, 1024, TensorKind::Ifmap, 0), &mut sink);
        s.transform(&Burst::read(896, 1024, TensorKind::Ifmap, 0), &mut sink);
        assert_eq!(s.redundant_hash_bytes(), 128, "the 128 B halo re-hashes");
        assert_eq!(s.hashed_bytes(), 2048);
    }

    #[test]
    fn redundancy_resets_per_layer() {
        let mut s = SecuratorScheme::new(1 << 30);
        let mut sink = |_r| {};
        s.transform(&Burst::read(0, 512, TensorKind::Ifmap, 0), &mut sink);
        s.transform(&Burst::read(0, 512, TensorKind::Ifmap, 1), &mut sink);
        assert_eq!(
            s.redundant_hash_bytes(),
            0,
            "the next layer legitimately re-reads its input"
        );
    }

    #[test]
    fn writes_are_hashed_but_never_redundant() {
        let mut s = SecuratorScheme::new(1 << 30);
        let mut sink = |_r| {};
        s.transform(&Burst::write(0, 256, TensorKind::Ofmap, 0), &mut sink);
        s.transform(&Burst::write(0, 256, TensorKind::Ofmap, 0), &mut sink);
        assert_eq!(s.redundant_hash_bytes(), 0);
        assert_eq!(s.hashed_bytes(), 512);
    }
}
