//! Metadata address layout of the protected region.
//!
//! Data occupies the bottom of the 16 GB protected region (paper §IV-A);
//! MAC, version-number, and integrity-tree arrays live above it at fixed
//! bases so metadata accesses land on distinct DRAM rows from data — the
//! locality break that makes metadata traffic expensive.

use serde::{Deserialize, Serialize};

/// Bytes per MAC tag (8 B MACs throughout the paper).
pub const MAC_BYTES: u64 = 8;

/// Bytes per version number slot (56-bit VN padded to 8 B).
pub const VN_BYTES: u64 = 8;

/// Metadata line size (one DRAM access).
pub const LINE_BYTES: u64 = 64;

/// Data bytes covered by one VN (SGX counts per 64 B cache line).
pub const VN_COVERAGE: u64 = 64;

/// Integrity-tree arity: one 64 B node authenticates eight children.
pub const TREE_ARITY: u64 = 8;

/// Address bases for the metadata arrays of a protected region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetaLayout {
    /// Size of the protected data region in bytes.
    pub protected_bytes: u64,
    /// Base of the MAC array.
    pub mac_base: u64,
    /// Base of the VN array.
    pub vn_base: u64,
    /// Base address of each integrity-tree level, leaf level first.
    /// The level above the last one is the on-chip root.
    pub tree_level_base: Vec<u64>,
    /// Number of VN lines at the tree's leaf level.
    pub vn_lines: u64,
}

impl MetaLayout {
    /// Lays out metadata for a `protected_bytes` region protected at MAC
    /// granularity `mac_granularity`.
    ///
    /// # Panics
    ///
    /// Panics if sizes are zero or `mac_granularity` is not a multiple of
    /// 64 B.
    pub fn new(protected_bytes: u64, mac_granularity: u64) -> Self {
        assert!(protected_bytes > 0, "empty protected region");
        assert!(
            mac_granularity >= LINE_BYTES && mac_granularity.is_multiple_of(LINE_BYTES),
            "MAC granularity must be a positive multiple of 64 B"
        );
        let mac_base = protected_bytes;
        let mac_bytes = protected_bytes / mac_granularity * MAC_BYTES;
        let vn_base = mac_base + mac_bytes;
        let vn_bytes = protected_bytes / VN_COVERAGE * VN_BYTES;
        let vn_lines = vn_bytes.div_ceil(LINE_BYTES);

        // Tree levels over the VN lines, shrinking by TREE_ARITY until a
        // level fits in one node (that level's parent is the on-chip root).
        let mut tree_level_base = Vec::new();
        let mut cursor = vn_base + vn_bytes;
        let mut nodes = vn_lines.div_ceil(TREE_ARITY);
        while nodes >= 1 {
            tree_level_base.push(cursor);
            cursor += nodes * LINE_BYTES;
            if nodes == 1 {
                break;
            }
            nodes = nodes.div_ceil(TREE_ARITY);
        }
        Self {
            protected_bytes,
            mac_base,
            vn_base,
            tree_level_base,
            vn_lines,
        }
    }

    /// Address of the MAC line holding the tag of the protection block at
    /// `block_index` (blocks of the layout's MAC granularity).
    pub fn mac_line(&self, block_index: u64) -> u64 {
        let tag_addr = self.mac_base + block_index * MAC_BYTES;
        tag_addr / LINE_BYTES * LINE_BYTES
    }

    /// Address of the VN line covering data address `addr`.
    pub fn vn_line(&self, addr: u64) -> u64 {
        let vn_index = addr / VN_COVERAGE;
        let vn_addr = self.vn_base + vn_index * VN_BYTES;
        vn_addr / LINE_BYTES * LINE_BYTES
    }

    /// Tree-node addresses on the path from the VN line covering `addr`
    /// up to (but excluding) the on-chip root, leaf level first.
    pub fn tree_path(&self, addr: u64) -> Vec<u64> {
        let vn_line_idx = (self.vn_line(addr) - self.vn_base) / LINE_BYTES;
        let mut path = Vec::with_capacity(self.tree_level_base.len());
        let mut idx = vn_line_idx / TREE_ARITY;
        for (level, base) in self.tree_level_base.iter().enumerate() {
            path.push(base + idx * LINE_BYTES);
            if level + 1 < self.tree_level_base.len() {
                idx /= TREE_ARITY;
            }
        }
        path
    }

    /// Number of tree levels stored off-chip.
    pub fn tree_depth(&self) -> usize {
        self.tree_level_base.len()
    }

    /// Parent tree node of a VN line or tree node at `addr`, or `None` if
    /// `addr` is not metadata with a parent (data, MACs, or the top node,
    /// whose parent is the on-chip root).
    pub fn parent_of(&self, addr: u64) -> Option<u64> {
        let vn_end = self.vn_base + self.vn_lines * LINE_BYTES;
        if addr >= self.vn_base && addr < vn_end {
            let idx = (addr - self.vn_base) / LINE_BYTES;
            return self
                .tree_level_base
                .first()
                .map(|base| base + idx / TREE_ARITY * LINE_BYTES);
        }
        for (level, &base) in self.tree_level_base.iter().enumerate() {
            let next = self.tree_level_base.get(level + 1)?;
            if addr >= base && addr < *next {
                let idx = (addr - base) / LINE_BYTES;
                return Some(next + idx / TREE_ARITY * LINE_BYTES);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    #[test]
    fn sixteen_gib_tree_depth() {
        let l = MetaLayout::new(16 * GIB, 64);
        // 16 GiB / 64 B = 256 Mi VNs → 32 Mi VN lines → levels of
        // 4Mi, 512Ki, 64Ki, 8Ki, 1Ki, 128, 16, 2, 1 nodes = 9 levels.
        assert_eq!(l.tree_depth(), 9);
    }

    #[test]
    fn regions_do_not_overlap() {
        let l = MetaLayout::new(GIB, 512);
        assert!(l.mac_base >= l.protected_bytes);
        assert!(l.vn_base >= l.mac_base + l.protected_bytes / 512 * MAC_BYTES);
        let mut prev_end = l.vn_base + l.vn_lines * LINE_BYTES;
        for &b in &l.tree_level_base {
            assert!(b >= prev_end, "level base {b} below {prev_end}");
            prev_end = b;
        }
    }

    #[test]
    fn mac_lines_pack_eight_tags() {
        let l = MetaLayout::new(GIB, 64);
        assert_eq!(l.mac_line(0), l.mac_line(7));
        assert_ne!(l.mac_line(7), l.mac_line(8));
    }

    #[test]
    fn vn_line_covers_512_bytes_of_data() {
        let l = MetaLayout::new(GIB, 64);
        assert_eq!(l.vn_line(0), l.vn_line(511));
        assert_ne!(l.vn_line(511), l.vn_line(512));
    }

    #[test]
    fn tree_path_is_monotone_and_shrinks() {
        let l = MetaLayout::new(16 * GIB, 64);
        let p1 = l.tree_path(0);
        let p2 = l.tree_path(8 * GIB);
        assert_eq!(p1.len(), l.tree_depth());
        // Paths from distant addresses converge at the top.
        assert_ne!(p1[0], p2[0]);
        assert_eq!(p1.last(), p2.last(), "single top node below the root");
    }

    #[test]
    fn neighbouring_vn_lines_share_parents() {
        let l = MetaLayout::new(16 * GIB, 64);
        let a = l.tree_path(0);
        let b = l.tree_path(512); // next VN slot, same VN line? 512B data = same line
        assert_eq!(a, b);
        let c = l.tree_path(4096 * 8); // 8 VN lines away → different leaf parent
        assert_ne!(a[0], c[0]);
    }
}

#[cfg(test)]
mod parent_tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    #[test]
    fn vn_lines_have_leaf_parents() {
        let l = MetaLayout::new(16 * GIB, 64);
        let vn_line = l.vn_line(0);
        let parent = l.parent_of(vn_line).expect("VN line has a parent");
        assert_eq!(parent, l.tree_path(0)[0]);
    }

    #[test]
    fn parents_chain_to_the_top() {
        let l = MetaLayout::new(16 * GIB, 64);
        let mut node = l.vn_line(0);
        let mut hops = 0;
        while let Some(p) = l.parent_of(node) {
            assert!(p > node, "parents live at higher addresses");
            node = p;
            hops += 1;
            assert!(hops <= l.tree_depth(), "parent chain must terminate");
        }
        assert_eq!(hops, l.tree_depth(), "chain walks every level");
    }

    #[test]
    fn data_and_mac_addresses_have_no_parent() {
        let l = MetaLayout::new(GIB, 64);
        assert_eq!(l.parent_of(0), None);
        assert_eq!(l.parent_of(l.mac_base), None);
    }

    #[test]
    fn siblings_share_a_parent() {
        let l = MetaLayout::new(16 * GIB, 64);
        let a = l.parent_of(l.vn_base);
        let b = l.parent_of(l.vn_base + 7 * LINE_BYTES);
        let c = l.parent_of(l.vn_base + 8 * LINE_BYTES);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
