//! SGX- and MGX-style block-granular protection schemes.
//!
//! Both authenticate fixed-size protection blocks with 8 B MACs behind an
//! 8 KB MAC cache. SGX additionally fetches per-64 B-line version numbers
//! through a 16 KB VN cache and climbs a counter integrity tree on VN
//! misses (tree nodes share the VN cache); MGX generates version numbers
//! on-chip from DNN semantics, so only MACs go off-chip (paper §II-C).
//!
//! Partial-block writes trigger read-modify-write fills: the untouched
//! lines of an edge block must be fetched to recompute its MAC. Partial
//! reads overfetch to the block boundary for the same reason. These are
//! the tiling-misalignment costs of coarse granularities.

use crate::cache::MetaCache;
use crate::layout::{MetaLayout, LINE_BYTES, VN_COVERAGE};
use crate::scheme::{emit_demand, line_down, ProtectionScheme, SchemeInfo, TrafficBreakdown};
use seda_dram::Request;
use seda_scalesim::Burst;

/// Telemetry counter names for one metadata cache.
struct CacheMetrics {
    hits: &'static str,
    misses: &'static str,
    writebacks: &'static str,
}

const MAC_CACHE_METRICS: CacheMetrics = CacheMetrics {
    hits: "protect.mac_cache.hits",
    misses: "protect.mac_cache.misses",
    writebacks: "protect.mac_cache.writebacks",
};

const VN_CACHE_METRICS: CacheMetrics = CacheMetrics {
    hits: "protect.vn_cache.hits",
    misses: "protect.vn_cache.misses",
    writebacks: "protect.vn_cache.writebacks",
};

/// Emits one metadata cache's `(hits, misses, writebacks)` growth since
/// the previous flush. The per-access cache path carries no telemetry
/// dispatch — [`MetaCache`] already counts natively — so schemes flush
/// deltas at [`ProtectionScheme::finish`], keeping hot loops free.
fn flush_cache_telemetry(m: &CacheMetrics, reported: &mut (u64, u64, u64), stats: (u64, u64, u64)) {
    if !seda_telemetry::enabled() {
        return;
    }
    seda_telemetry::counter_add(m.hits, stats.0 - reported.0);
    seda_telemetry::counter_add(m.misses, stats.1 - reported.1);
    seda_telemetry::counter_add(m.writebacks, stats.2 - reported.2);
    *reported = stats;
}

/// Which classic scheme the block-MAC engine models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockMacKind {
    /// Intel SGX-style: MAC + VN + integrity tree.
    Sgx,
    /// MGX-style: MAC only, VNs generated on-chip.
    Mgx,
}

/// A block-granular MAC protection scheme (SGX or MGX flavour).
///
/// # Examples
///
/// ```
/// use seda_protect::block_mac::{BlockMacKind, BlockMacScheme};
/// use seda_protect::scheme::ProtectionScheme;
/// use seda_scalesim::{Burst, TensorKind};
///
/// let mut sgx = BlockMacScheme::new(BlockMacKind::Sgx, 64, 16 << 30);
/// let mut reqs = Vec::new();
/// sgx.transform(&Burst::read(0, 4096, TensorKind::Filter, 0), &mut |r| reqs.push(r));
/// assert!(sgx.breakdown().mac_read > 0);
/// ```
#[derive(Debug, Clone)]
pub struct BlockMacScheme {
    kind: BlockMacKind,
    name: String,
    granularity: u64,
    layout: MetaLayout,
    mac_cache: MetaCache,
    vn_cache: Option<MetaCache>,
    tally: TrafficBreakdown,
    /// Cache stats already flushed to telemetry (MAC, VN), so repeated
    /// [`ProtectionScheme::finish`] calls emit deltas, not totals.
    reported_mac: (u64, u64, u64),
    reported_vn: (u64, u64, u64),
}

impl BlockMacScheme {
    /// Creates a scheme protecting a `protected_bytes` region at MAC
    /// granularity `granularity` (64 B or 512 B in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is not a positive multiple of 64 B.
    pub fn new(kind: BlockMacKind, granularity: u64, protected_bytes: u64) -> Self {
        // Paper §IV-A: 8 KB MAC cache, 16 KB VN cache, LRU.
        Self::with_caches(kind, granularity, protected_bytes, 8 << 10, 16 << 10)
    }

    /// Like [`BlockMacScheme::new`] with explicit metadata-cache sizes
    /// (used by the cache-sensitivity ablation).
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is not a positive multiple of 64 B or a
    /// cache geometry is degenerate.
    pub fn with_caches(
        kind: BlockMacKind,
        granularity: u64,
        protected_bytes: u64,
        mac_cache_bytes: u64,
        vn_cache_bytes: u64,
    ) -> Self {
        let layout = MetaLayout::new(protected_bytes, granularity);
        let prefix = match kind {
            BlockMacKind::Sgx => "SGX",
            BlockMacKind::Mgx => "MGX",
        };
        Self {
            kind,
            name: format!("{prefix}-{granularity}B"),
            granularity,
            layout,
            mac_cache: MetaCache::new(mac_cache_bytes, LINE_BYTES, 8),
            vn_cache: match kind {
                BlockMacKind::Sgx => Some(MetaCache::new(vn_cache_bytes, LINE_BYTES, 8)),
                BlockMacKind::Mgx => None,
            },
            tally: TrafficBreakdown::default(),
            reported_mac: (0, 0, 0),
            reported_vn: (0, 0, 0),
        }
    }

    /// The protection-block granularity in bytes.
    pub fn granularity(&self) -> u64 {
        self.granularity
    }

    /// MAC-cache `(hits, misses, writebacks)`. Every miss costs one MAC
    /// line read and every writeback one MAC line write, so
    /// `mac_read == misses × 64` and `mac_write == writebacks × 64` after
    /// [`ProtectionScheme::finish`] — the invariant the validation harness
    /// checks.
    pub fn mac_cache_stats(&self) -> (u64, u64, u64) {
        self.mac_cache.stats()
    }

    /// VN/tree-cache `(hits, misses, writebacks)`, or `None` for MGX
    /// (VNs on-chip). The cache holds both VN lines and tree nodes, so
    /// `vn_read + tree_read == misses × 64` and
    /// `vn_write + tree_write == writebacks × 64` after
    /// [`ProtectionScheme::finish`].
    pub fn vn_cache_stats(&self) -> Option<(u64, u64, u64)> {
        self.vn_cache.as_ref().map(|c| c.stats())
    }

    fn classify_writeback(&mut self, addr: u64, sink: &mut dyn FnMut(Request)) {
        // Bonsai-style lazy tree update: writing back a dirty VN line (or
        // tree node) re-hashes it, so its parent node must be updated —
        // touch the parent dirty in the cache, fetching it on a miss. The
        // cascade is bounded by the tree depth; the top node's parent is
        // the on-chip root (free).
        let mut pending = vec![addr];
        while let Some(a) = pending.pop() {
            sink(Request::write(a));
            let tree_base = self
                .layout
                .tree_level_base
                .first()
                .copied()
                .unwrap_or(u64::MAX);
            if a >= tree_base {
                self.tally.tree_write += LINE_BYTES;
            } else if a >= self.layout.vn_base {
                self.tally.vn_write += LINE_BYTES;
            } else {
                self.tally.mac_write += LINE_BYTES;
                continue; // MAC lines have no tree parent.
            }
            if let (Some(parent), Some(cache)) = (self.layout.parent_of(a), self.vn_cache.as_mut())
            {
                let acc = cache.access(parent, true);
                if !acc.hit {
                    sink(Request::read(parent));
                    self.tally.tree_read += LINE_BYTES;
                }
                if let Some(wb) = acc.writeback {
                    pending.push(wb);
                }
            }
        }
    }

    fn access_vn(&mut self, data_addr: u64, is_write: bool, sink: &mut dyn FnMut(Request)) {
        let Some(cache) = self.vn_cache.as_mut() else {
            return;
        };
        let vline = self.layout.vn_line(data_addr);
        let acc = cache.access(vline, is_write);
        if let Some(wb) = acc.writeback {
            self.classify_writeback(wb, sink);
        }
        if !acc.hit {
            sink(Request::read(vline));
            self.tally.vn_read += LINE_BYTES;
            // Climb the tree until a cached (trusted) node or the root.
            let path = self.layout.tree_path(data_addr);
            for node in path {
                // Invariant: the let-else at function entry returned unless
                // `vn_cache` is Some; nothing clears it in between.
                #[allow(clippy::expect_used)]
                let cache = self.vn_cache.as_mut().expect("checked above");
                let a = cache.access(node, false);
                if let Some(wb) = a.writeback {
                    self.classify_writeback(wb, sink);
                }
                if a.hit {
                    break;
                }
                sink(Request::read(node));
                self.tally.tree_read += LINE_BYTES;
            }
        }
    }
}

impl ProtectionScheme for BlockMacScheme {
    fn name(&self) -> &str {
        &self.name
    }

    fn info(&self) -> SchemeInfo {
        SchemeInfo {
            name: self.name.clone(),
            encryption_granularity: "16B (AES engine bank)".to_owned(),
            integrity_granularity: format!("{}B", self.granularity),
            offchip_metadata: match self.kind {
                BlockMacKind::Sgx => "MAC, VN, IT".to_owned(),
                BlockMacKind::Mgx => "MAC".to_owned(),
            },
            tiling_aware: false,
            encryption_scalable: false,
        }
    }

    fn transform(&mut self, burst: &Burst, sink: &mut dyn FnMut(Request)) {
        let (start, end) = emit_demand(burst, &mut self.tally, sink);
        let g = self.granularity;
        let gspan_start = start / g * g;
        let gspan_end = end.div_ceil(g) * g;

        // Alignment fills: lines inside the protection blocks but outside
        // the demand span. Reads need them to verify the block MAC; writes
        // need them to recompute it (read-modify-write).
        let mut a = gspan_start;
        while a < gspan_end {
            if a < start || a >= end {
                sink(Request::read(a));
                self.tally.overfetch_read += LINE_BYTES;
            }
            a += LINE_BYTES;
        }

        // One MAC tag per protection block, via the MAC cache.
        let mut block = gspan_start / g;
        while block * g < gspan_end {
            let line = self.layout.mac_line(block);
            let acc = self.mac_cache.access(line, burst.is_write);
            if let Some(wb) = acc.writeback {
                self.classify_writeback(wb, sink);
            }
            if !acc.hit {
                sink(Request::read(line));
                self.tally.mac_read += LINE_BYTES;
            }
            block += 1;
        }

        // One VN slot per 64 B data line (SGX only); VN lines cover 512 B.
        if self.vn_cache.is_some() {
            let mut span = line_down(gspan_start) / VN_COVERAGE * VN_COVERAGE;
            let vn_line_data_span = VN_COVERAGE * (LINE_BYTES / crate::layout::VN_BYTES);
            span = span / vn_line_data_span * vn_line_data_span;
            while span < gspan_end {
                self.access_vn(span, burst.is_write, sink);
                span += vn_line_data_span;
            }
        }
    }

    fn finish(&mut self, sink: &mut dyn FnMut(Request)) {
        for addr in self.mac_cache.flush() {
            self.classify_writeback(addr, sink);
        }
        // Flushing dirty VN lines re-dirties their parents (Bonsai update),
        // so iterate until the cache drains; each round moves strictly up
        // the tree, bounding the loop by its depth.
        while let Some(cache) = self.vn_cache.as_mut() {
            let dirty = cache.flush();
            if dirty.is_empty() {
                break;
            }
            for addr in dirty {
                self.classify_writeback(addr, sink);
            }
        }
        flush_cache_telemetry(
            &MAC_CACHE_METRICS,
            &mut self.reported_mac,
            self.mac_cache.stats(),
        );
        if let Some(cache) = &self.vn_cache {
            flush_cache_telemetry(&VN_CACHE_METRICS, &mut self.reported_vn, cache.stats());
        }
    }

    fn breakdown(&self) -> TrafficBreakdown {
        self.tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_scalesim::TensorKind;

    const GIB: u64 = 1 << 30;

    fn run(scheme: &mut BlockMacScheme, bursts: &[Burst]) -> Vec<Request> {
        let mut reqs = Vec::new();
        for b in bursts {
            scheme.transform(b, &mut |r| reqs.push(r));
        }
        scheme.finish(&mut |r| reqs.push(r));
        reqs
    }

    #[test]
    fn mgx_64_mac_overhead_is_one_eighth() {
        // Streaming a large aligned tensor: MAC traffic = 8 B per 64 B block
        // = 12.5% of demand, the MGX-64B figure of the paper.
        let mut m = BlockMacScheme::new(BlockMacKind::Mgx, 64, GIB);
        run(&mut m, &[Burst::read(0, 1 << 20, TensorKind::Filter, 0)]);
        let b = m.breakdown();
        assert_eq!(b.demand_read, 1 << 20);
        assert_eq!(b.overfetch_read, 0);
        let ratio = b.mac_read as f64 / b.demand_read as f64;
        assert!((ratio - 0.125).abs() < 0.001, "MAC ratio {ratio}");
        assert_eq!(b.vn_read + b.tree_read, 0, "MGX fetches no VN/tree");
    }

    #[test]
    fn mgx_512_cuts_mac_traffic_eightfold() {
        let mut m64 = BlockMacScheme::new(BlockMacKind::Mgx, 64, GIB);
        let mut m512 = BlockMacScheme::new(BlockMacKind::Mgx, 512, GIB);
        let bursts = [Burst::read(0, 1 << 20, TensorKind::Filter, 0)];
        run(&mut m64, &bursts);
        run(&mut m512, &bursts);
        assert_eq!(
            m64.breakdown().mac_read,
            8 * m512.breakdown().mac_read,
            "8x fewer blocks at 512B"
        );
    }

    #[test]
    fn sgx_adds_vn_and_tree_traffic() {
        let mut s = BlockMacScheme::new(BlockMacKind::Sgx, 64, 16 * GIB);
        run(&mut s, &[Burst::read(0, 1 << 20, TensorKind::Ifmap, 0)]);
        let b = s.breakdown();
        assert!(b.vn_read > 0);
        assert!(b.tree_read > 0);
        // VN: one 64 B line per 512 B of data = 12.5% on a cold stream.
        let vn_ratio = b.vn_read as f64 / b.demand_read as f64;
        assert!((vn_ratio - 0.125).abs() < 0.01, "VN ratio {vn_ratio}");
        // Total SGX-64B overhead lands near the paper's ~30%.
        let total = b.total() as f64 / b.demand_read as f64 - 1.0;
        assert!(total > 0.25 && total < 0.35, "SGX-64B overhead {total}");
    }

    #[test]
    fn partial_block_write_triggers_rmw() {
        let mut m = BlockMacScheme::new(BlockMacKind::Mgx, 512, GIB);
        // Write 64 B into a 512 B protection block: 448 B must be fetched.
        let reqs = run(&mut m, &[Burst::write(0, 64, TensorKind::Ofmap, 0)]);
        let b = m.breakdown();
        assert_eq!(b.demand_write, 64);
        assert_eq!(b.overfetch_read, 448);
        assert!(reqs.iter().filter(|r| !r.is_write).count() >= 7);
    }

    #[test]
    fn aligned_write_needs_no_rmw() {
        let mut m = BlockMacScheme::new(BlockMacKind::Mgx, 512, GIB);
        run(&mut m, &[Burst::write(512, 512, TensorKind::Ofmap, 0)]);
        assert_eq!(m.breakdown().overfetch_read, 0);
    }

    #[test]
    fn mac_cache_absorbs_repeat_access() {
        let mut m = BlockMacScheme::new(BlockMacKind::Mgx, 64, GIB);
        let b = [Burst::read(0, 4096, TensorKind::Ifmap, 0)];
        run(&mut m, &b);
        let first = m.breakdown().mac_read;
        // Re-reading the same 4 KB touches the same MAC line (already
        // cached): no new MAC traffic.
        let mut reqs = Vec::new();
        m.transform(&b[0], &mut |r| reqs.push(r));
        assert_eq!(m.breakdown().mac_read, first);
    }

    #[test]
    fn dirty_mac_lines_flush_as_writes() {
        let mut m = BlockMacScheme::new(BlockMacKind::Mgx, 64, GIB);
        let mut reqs = Vec::new();
        m.transform(&Burst::write(0, 4096, TensorKind::Ofmap, 0), &mut |r| {
            reqs.push(r)
        });
        let before = m.breakdown().mac_write;
        m.finish(&mut |r| reqs.push(r));
        assert!(m.breakdown().mac_write > before, "flush writes dirty MACs");
    }

    #[test]
    fn sgx_write_dirties_vn_lines() {
        let mut s = BlockMacScheme::new(BlockMacKind::Sgx, 64, GIB);
        let mut reqs = Vec::new();
        s.transform(&Burst::write(0, 1 << 16, TensorKind::Ofmap, 0), &mut |r| {
            reqs.push(r)
        });
        s.finish(&mut |r| reqs.push(r));
        assert!(
            s.breakdown().vn_write > 0,
            "incremented VNs must write back"
        );
    }

    #[test]
    fn names_follow_paper_convention() {
        assert_eq!(
            BlockMacScheme::new(BlockMacKind::Sgx, 512, GIB).name(),
            "SGX-512B"
        );
        assert_eq!(
            BlockMacScheme::new(BlockMacKind::Mgx, 64, GIB).name(),
            "MGX-64B"
        );
    }
}

#[cfg(test)]
mod bonsai_tests {
    use super::*;
    use seda_scalesim::{Burst, TensorKind};

    #[test]
    fn dirty_vn_eviction_updates_parent_nodes() {
        // Write enough distinct VN lines to force dirty evictions; the
        // Bonsai update must produce tree writes by the end of inference.
        let mut s = BlockMacScheme::new(BlockMacKind::Sgx, 64, 16 << 30);
        let mut reqs = Vec::new();
        // 1 MiB of writes touches 2048 VN slots = 256 VN lines > 16 KB/64.
        for i in 0..64u64 {
            s.transform(
                &Burst::write(i * 512 * 1024, 16 * 1024, TensorKind::Ofmap, 0),
                &mut |r| reqs.push(r),
            );
        }
        s.finish(&mut |r| reqs.push(r));
        let t = s.breakdown();
        assert!(t.vn_write > 0, "dirty VN lines must write back");
        assert!(t.tree_write > 0, "Bonsai updates must reach the tree");
    }

    #[test]
    fn finish_leaves_no_dirty_state() {
        let mut s = BlockMacScheme::new(BlockMacKind::Sgx, 64, 1 << 30);
        let mut sink = |_r| {};
        s.transform(&Burst::write(0, 1 << 20, TensorKind::Ofmap, 0), &mut sink);
        s.finish(&mut sink);
        // A second finish emits nothing: everything already drained.
        let mut n = 0;
        s.finish(&mut |_r| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn read_only_streams_produce_no_tree_writes() {
        let mut s = BlockMacScheme::new(BlockMacKind::Sgx, 64, 1 << 30);
        let mut sink = |_r| {};
        s.transform(&Burst::read(0, 1 << 20, TensorKind::Filter, 0), &mut sink);
        s.finish(&mut sink);
        assert_eq!(s.breakdown().tree_write, 0);
        assert_eq!(s.breakdown().vn_write, 0);
    }
}
