//! Message authentication codes for protected data blocks, and the XOR-MAC
//! layer folding that SeDA's multi-level integrity verification uses.
//!
//! Two MAC constructions are provided:
//!
//! * [`PositionlessMac`] — hashes only the ciphertext (plus `PA || VN`), the
//!   construction Securator-style layer checks implicitly rely on. XOR-folding
//!   these is vulnerable to the Re-Permutation Attack (RePA, Algorithm 2).
//! * [`PositionBoundMac`] — SeDA's defense: binds `layer_id`, `fmap_idx` and
//!   `blk_idx` into each optBlk MAC (Algorithm 2 lines 7-8), so a shuffled
//!   layer no longer XOR-folds to the same layer MAC.

use crate::sha256::hmac_sha256;

/// MAC width assumed throughout the evaluation (8 B MAC per block).
pub const MAC_BYTES: usize = 8;

/// A truncated 64-bit MAC tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct MacTag(pub u64);

impl MacTag {
    /// XOR-combines two tags (the XOR-MAC fold of Bellare et al.).
    pub fn xor(self, other: MacTag) -> MacTag {
        MacTag(self.0 ^ other.0)
    }

    /// Constant-time equality: every byte of both tags is examined and
    /// folded into the verdict, with no data-dependent early exit, so the
    /// comparison's timing leaks nothing about *where* a forged tag first
    /// diverges. All verify paths in the workspace go through this.
    pub fn ct_eq(self, other: MacTag) -> bool {
        ct_eq_bytes(&self.0.to_be_bytes(), &other.0.to_be_bytes())
    }

    /// Constant-time verification against an expected tag.
    ///
    /// # Errors
    ///
    /// Returns [`TagMismatch`] (carrying both tags) when they differ.
    pub fn verify(self, expected: MacTag) -> Result<(), TagMismatch> {
        if self.ct_eq(expected) {
            Ok(())
        } else {
            seda_telemetry::counter_add("crypto.mac.tag_mismatches", 1);
            Err(TagMismatch {
                expected,
                actual: self,
            })
        }
    }
}

/// Accumulates the byte-wise difference of two equal-length slices: the OR
/// of all byte XORs. Zero iff the slices are identical. Every byte pair
/// contributes to the result regardless of earlier differences — the
/// no-early-exit property [`MacTag::ct_eq`] relies on.
pub fn ct_diff(a: &[u8], b: &[u8]) -> u8 {
    debug_assert_eq!(a.len(), b.len(), "ct_diff compares equal lengths");
    a.iter().zip(b.iter()).fold(0u8, |d, (x, y)| d | (x ^ y))
}

/// Constant-time slice equality (length mismatch is public information and
/// returns `false` immediately; content comparison has no early exit).
pub fn ct_eq_bytes(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && ct_diff(a, b) == 0
}

/// A failed tag verification: the expected and recomputed tags.
///
/// Tags are 64-bit truncations of keyed HMACs over data the verifier
/// already holds, so carrying both values in the error is diagnostic
/// context, not a secret leak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagMismatch {
    /// The tag the verifier expected (stored / on-chip value).
    pub expected: MacTag,
    /// The tag recomputed from the (possibly tampered) data.
    pub actual: MacTag,
}

impl core::fmt::Display for TagMismatch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "MAC tag mismatch: expected {}, recomputed {}",
            self.expected, self.actual
        )
    }
}

impl std::error::Error for TagMismatch {}

impl core::fmt::Display for MacTag {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Position metadata bound into a SeDA optBlk MAC (Algorithm 2, line 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BlockPosition {
    /// Index of the layer the block belongs to.
    pub layer_id: u32,
    /// Index of the feature map (or weight tensor) within the layer.
    pub fmap_idx: u32,
    /// Index of the block within the feature map.
    pub blk_idx: u32,
}

impl BlockPosition {
    /// Creates a position triple.
    pub fn new(layer_id: u32, fmap_idx: u32, blk_idx: u32) -> Self {
        Self {
            layer_id,
            fmap_idx,
            blk_idx,
        }
    }
}

fn truncate(digest: &[u8; 32]) -> MacTag {
    // Invariant: an 8-byte slice of a 32-byte digest always converts.
    #[allow(clippy::expect_used)]
    MacTag(u64::from_be_bytes(
        digest[..8].try_into().expect("8-byte prefix"),
    ))
}

/// The naive block MAC: `HMAC_K(blk || PA || VN)`.
///
/// Freshness per block is sound, but XOR-folding these into a layer MAC is
/// order-insensitive — see [`crate::mac::xor_fold`] and the RePA attack.
#[derive(Debug, Clone)]
pub struct PositionlessMac {
    key: [u8; 16],
}

impl PositionlessMac {
    /// Creates a MAC engine under `key`.
    pub fn new(key: [u8; 16]) -> Self {
        Self { key }
    }

    /// MACs a ciphertext block bound to its address and version.
    pub fn tag(&self, blk: &[u8], pa: u64, vn: u64) -> MacTag {
        let mut msg = Vec::with_capacity(blk.len() + 16);
        msg.extend_from_slice(blk);
        msg.extend_from_slice(&pa.to_be_bytes());
        msg.extend_from_slice(&vn.to_be_bytes());
        truncate(&hmac_sha256(&self.key, &msg))
    }
}

/// SeDA's position-bound optBlk MAC:
/// `HMAC_K(blk || PA || VN || layer_id || fmap_idx || blk_idx)`.
///
/// # Examples
///
/// ```
/// use seda_crypto::mac::{BlockPosition, PositionBoundMac};
///
/// let mac = PositionBoundMac::new([1u8; 16]);
/// let a = mac.tag(b"block-a", 0x100, 0, BlockPosition::new(3, 0, 7));
/// let b = mac.tag(b"block-a", 0x100, 0, BlockPosition::new(3, 0, 8));
/// assert_ne!(a, b, "same data at a different block index must not collide");
/// ```
#[derive(Debug, Clone)]
pub struct PositionBoundMac {
    key: [u8; 16],
}

impl PositionBoundMac {
    /// Creates a MAC engine under `key`.
    pub fn new(key: [u8; 16]) -> Self {
        Self { key }
    }

    /// MACs a ciphertext block bound to address, version, and position.
    pub fn tag(&self, blk: &[u8], pa: u64, vn: u64, pos: BlockPosition) -> MacTag {
        let mut msg = Vec::with_capacity(blk.len() + 28);
        msg.extend_from_slice(blk);
        msg.extend_from_slice(&pa.to_be_bytes());
        msg.extend_from_slice(&vn.to_be_bytes());
        msg.extend_from_slice(&pos.layer_id.to_be_bytes());
        msg.extend_from_slice(&pos.fmap_idx.to_be_bytes());
        msg.extend_from_slice(&pos.blk_idx.to_be_bytes());
        truncate(&hmac_sha256(&self.key, &msg))
    }
}

/// XOR-folds a sequence of block tags into a single aggregate tag.
///
/// This is the layer-MAC fold of SeDA (and the Securator layer check). The
/// fold is *commutative*: order does not affect the result, which is exactly
/// why position binding inside each tag is required for security.
pub fn xor_fold<I: IntoIterator<Item = MacTag>>(tags: I) -> MacTag {
    tags.into_iter().fold(MacTag(0), MacTag::xor)
}

/// Incremental XOR-MAC accumulator for a layer (or whole model).
///
/// Supports the incrementality property of XOR-MACs: re-writing one block
/// updates the aggregate by XORing out the old tag and XORing in the new one,
/// without touching any other block.
///
/// # Examples
///
/// ```
/// use seda_crypto::mac::{MacTag, XorAccumulator};
///
/// let mut acc = XorAccumulator::new();
/// acc.add(MacTag(0xaaaa));
/// acc.add(MacTag(0x5555));
/// acc.replace(MacTag(0x5555), MacTag(0x1111));
/// assert_eq!(acc.value(), MacTag(0xaaaa ^ 0x1111));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XorAccumulator {
    value: MacTag,
    blocks: u64,
}

impl XorAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a block tag to the aggregate.
    pub fn add(&mut self, tag: MacTag) {
        self.value = self.value.xor(tag);
        self.blocks += 1;
    }

    /// Replaces a block's tag after a write (incremental update).
    pub fn replace(&mut self, old: MacTag, new: MacTag) {
        self.value = self.value.xor(old).xor(new);
    }

    /// Removes a block tag (e.g. when a buffer is freed).
    pub fn remove(&mut self, tag: MacTag) {
        self.value = self.value.xor(tag);
        self.blocks = self.blocks.saturating_sub(1);
    }

    /// Current aggregate tag.
    pub fn value(&self) -> MacTag {
        self.value
    }

    /// Number of live blocks folded in.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Verifies the aggregate against an expected value (constant-time).
    pub fn verify(&self, expected: MacTag) -> bool {
        self.value.ct_eq(expected)
    }

    /// Like [`verify`](Self::verify), but returns the typed
    /// [`TagMismatch`] carrying both tags on failure.
    ///
    /// # Errors
    ///
    /// Returns [`TagMismatch`] when the aggregate differs from `expected`.
    pub fn check(&self, expected: MacTag) -> Result<(), TagMismatch> {
        self.value.verify(expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_depend_on_every_input() {
        let mac = PositionBoundMac::new([9u8; 16]);
        let base = mac.tag(b"data", 1, 2, BlockPosition::new(3, 4, 5));
        assert_ne!(base, mac.tag(b"datA", 1, 2, BlockPosition::new(3, 4, 5)));
        assert_ne!(base, mac.tag(b"data", 9, 2, BlockPosition::new(3, 4, 5)));
        assert_ne!(base, mac.tag(b"data", 1, 9, BlockPosition::new(3, 4, 5)));
        assert_ne!(base, mac.tag(b"data", 1, 2, BlockPosition::new(9, 4, 5)));
        assert_ne!(base, mac.tag(b"data", 1, 2, BlockPosition::new(3, 9, 5)));
        assert_ne!(base, mac.tag(b"data", 1, 2, BlockPosition::new(3, 4, 9)));
    }

    #[test]
    fn xor_fold_is_order_insensitive() {
        let tags = [MacTag(1), MacTag(2), MacTag(4), MacTag(8)];
        let mut rev = tags;
        rev.reverse();
        assert_eq!(xor_fold(tags), xor_fold(rev));
    }

    #[test]
    fn accumulator_matches_fold() {
        let tags = [MacTag(0xdead), MacTag(0xbeef), MacTag(0xf00d)];
        let mut acc = XorAccumulator::new();
        for t in tags {
            acc.add(t);
        }
        assert_eq!(acc.value(), xor_fold(tags));
        assert_eq!(acc.blocks(), 3);
    }

    #[test]
    fn incremental_replace_equals_rebuild() {
        let mac = PositionlessMac::new([2u8; 16]);
        let old = mac.tag(b"old", 0x40, 0);
        let new = mac.tag(b"new", 0x40, 1);
        let other = mac.tag(b"other", 0x80, 0);
        let mut acc = XorAccumulator::new();
        acc.add(old);
        acc.add(other);
        acc.replace(old, new);
        assert_eq!(acc.value(), xor_fold([new, other]));
    }

    #[test]
    fn ct_eq_touches_every_byte() {
        // A difference confined to any single byte position must flip the
        // verdict, and the accumulated difference must equal the OR-fold
        // over *all* byte pairs — i.e. every byte contributes to the
        // output, which an early-exit comparison cannot claim.
        let base = MacTag(0x0123_4567_89ab_cdef);
        for byte in 0..8 {
            let flipped = MacTag(base.0 ^ (0x80u64 << (8 * byte)));
            assert!(!base.ct_eq(flipped), "difference at byte {byte} missed");
            assert!(base.ct_eq(base));
        }
        let a = 0xdead_beef_0bad_f00du64.to_be_bytes();
        let b = 0x1234_5678_9abc_def0u64.to_be_bytes();
        let expected_fold = a.iter().zip(b.iter()).fold(0u8, |d, (x, y)| d | (x ^ y));
        assert_eq!(ct_diff(&a, &b), expected_fold);
        assert_eq!(ct_diff(&a, &a), 0);
    }

    #[test]
    fn ct_eq_bytes_handles_length_mismatch() {
        assert!(!ct_eq_bytes(&[1, 2, 3], &[1, 2]));
        assert!(ct_eq_bytes(&[1, 2, 3], &[1, 2, 3]));
        assert!(ct_eq_bytes(&[], &[]));
    }

    #[test]
    fn tag_verify_returns_typed_mismatch() {
        let good = MacTag(7);
        let bad = MacTag(9);
        assert!(good.verify(good).is_ok());
        let err = bad.verify(good).expect_err("mismatch");
        assert_eq!(err.expected, good);
        assert_eq!(err.actual, bad);
        let msg = err.to_string();
        assert!(msg.contains("0000000000000007"), "{msg}");
        assert!(msg.contains("0000000000000009"), "{msg}");
        // TagMismatch is a std error.
        let _: &dyn std::error::Error = &err;
    }

    #[test]
    fn verify_detects_tamper() {
        let mac = PositionBoundMac::new([5u8; 16]);
        let good = mac.tag(b"payload", 0, 0, BlockPosition::default());
        let bad = mac.tag(b"Payload", 0, 0, BlockPosition::default());
        let mut acc = XorAccumulator::new();
        acc.add(good);
        assert!(acc.verify(good));
        assert!(!acc.verify(bad));
    }
}
