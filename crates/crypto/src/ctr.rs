//! AES-CTR mode with the `PA || VN` counter construction used by secure
//! DNN accelerators (paper §II-A, Eq. 1-2).
//!
//! The counter block concatenates the physical address of the protected
//! block with a per-block version number (VN) that is incremented on every
//! write. Under a fixed key, a (PA, VN) pair is never reused, which is the
//! precondition for one-time-pad security of CTR mode.

use crate::aes::{Aes128, Block, BLOCK_BYTES};

/// The (physical address, version number) pair that seeds a counter block.
///
/// `pa` addresses the protected data block (not an individual 16 B AES
/// block); `vn` is incremented on each write to that block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CounterSeed {
    /// Physical address of the protected data block.
    pub pa: u64,
    /// Version number, incremented on every write of the block.
    pub vn: u64,
}

impl CounterSeed {
    /// Creates a counter seed from a physical address and version number.
    pub fn new(pa: u64, vn: u64) -> Self {
        Self { pa, vn }
    }

    /// Encodes the seed as the 128-bit counter block `PA || VN`.
    pub fn to_block(self) -> Block {
        let mut block = [0u8; BLOCK_BYTES];
        block[..8].copy_from_slice(&self.pa.to_be_bytes());
        block[8..].copy_from_slice(&self.vn.to_be_bytes());
        block
    }

    /// Returns the seed for the `i`-th 16 B AES segment inside the protected
    /// block, implementing the standard CTR increment.
    ///
    /// This is what a bank of parallel AES engines (T-AES) computes: the
    /// segment index is folded into the upper half of the VN field, so
    /// segment `i` uses counter `PA || (i << 32 | VN)` and never collides
    /// with a VN bump from a later write. Each segment pays a full AES
    /// evaluation. Contrast with [`crate::otp::BandwidthAwareOtp`], which
    /// derives segment pads from a single evaluation.
    pub fn segment(self, i: u64) -> Self {
        Self {
            pa: self.pa,
            vn: self.vn.wrapping_add(i << 32),
        }
    }
}

/// AES-CTR keystream generator and XOR cipher.
///
/// # Examples
///
/// ```
/// use seda_crypto::ctr::{AesCtr, CounterSeed};
///
/// let ctr = AesCtr::new([9u8; 16]);
/// let seed = CounterSeed::new(0x1000, 1);
/// let mut data = *b"sixteen byte msg";
/// ctr.apply_keystream(seed, &mut data);
/// assert_ne!(&data, b"sixteen byte msg");
/// ctr.apply_keystream(seed, &mut data);
/// assert_eq!(&data, b"sixteen byte msg");
/// ```
#[derive(Debug, Clone)]
pub struct AesCtr {
    aes: Aes128,
}

impl AesCtr {
    /// Creates a CTR-mode cipher under `key`.
    pub fn new(key: Block) -> Self {
        Self {
            aes: Aes128::new(key),
        }
    }

    /// Returns the underlying AES instance (for OTP derivation).
    pub fn aes(&self) -> &Aes128 {
        &self.aes
    }

    /// Produces the one-time pad for a single counter value:
    /// `AES-CTR_K(PA || VN)`.
    pub fn otp(&self, seed: CounterSeed) -> Block {
        self.aes.encrypt_block(seed.to_block())
    }

    /// XORs a keystream into `data`, encrypting or decrypting it in place.
    ///
    /// Each successive 16 B segment of `data` uses the standard incremented
    /// counter ([`CounterSeed::segment`]); a trailing partial segment uses
    /// the prefix of the final pad. Applying the same seed twice restores
    /// the original data.
    pub fn apply_keystream(&self, seed: CounterSeed, data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(BLOCK_BYTES).enumerate() {
            let pad = self.otp(seed.segment(i as u64));
            for (b, p) in chunk.iter_mut().zip(pad.iter()) {
                *b ^= p;
            }
        }
    }

    /// Encrypts `data` in place under `seed`. Alias of
    /// [`AesCtr::apply_keystream`] named for call-site readability (Eq. 1).
    pub fn encrypt(&self, seed: CounterSeed, data: &mut [u8]) {
        self.apply_keystream(seed, data);
    }

    /// Decrypts `data` in place under `seed` (Eq. 2).
    pub fn decrypt(&self, seed: CounterSeed, data: &mut [u8]) {
        self.apply_keystream(seed, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_block_layout() {
        let seed = CounterSeed::new(0x0102_0304_0506_0708, 0x1112_1314_1516_1718);
        let block = seed.to_block();
        assert_eq!(&block[..8], &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(
            &block[8..],
            &[0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18]
        );
    }

    #[test]
    fn distinct_seeds_give_distinct_pads() {
        let ctr = AesCtr::new([3u8; 16]);
        let a = ctr.otp(CounterSeed::new(0x40, 0));
        let b = ctr.otp(CounterSeed::new(0x40, 1));
        let c = ctr.otp(CounterSeed::new(0x80, 0));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn roundtrip_unaligned_length() {
        let ctr = AesCtr::new([0xab; 16]);
        let seed = CounterSeed::new(0x2000, 7);
        let mut data = vec![0x5au8; 37];
        let orig = data.clone();
        ctr.encrypt(seed, &mut data);
        assert_ne!(data, orig);
        ctr.decrypt(seed, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn segments_use_distinct_counters() {
        let ctr = AesCtr::new([0x11; 16]);
        let seed = CounterSeed::new(0x3000, 0);
        // Encrypt a block of 64 zero bytes; if segments shared a counter the
        // four ciphertext segments would be identical.
        let mut data = [0u8; 64];
        ctr.encrypt(seed, &mut data);
        let segs: Vec<&[u8]> = data.chunks(16).collect();
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(segs[i], segs[j]);
            }
        }
    }

    #[test]
    fn write_bumps_version_changes_ciphertext() {
        let ctr = AesCtr::new([0x42; 16]);
        let mut v0 = *b"weights weights!";
        let mut v1 = *b"weights weights!";
        ctr.encrypt(CounterSeed::new(0x100, 0), &mut v0);
        ctr.encrypt(CounterSeed::new(0x100, 1), &mut v1);
        assert_ne!(v0, v1);
    }
}
