//! Cryptographic substrate for the SeDA secure DNN accelerator.
//!
//! This crate provides bit-exact software models of the hardware primitives
//! the SeDA architecture (DAC 2025) builds on:
//!
//! * [`aes`] — AES-128 (FIPS-197) with an exposed key schedule, because
//!   SeDA's bandwidth-aware encryption XORs round keys from the engine's
//!   `keyExpansion` module into its one-time pads.
//! * [`ctr`] — AES-CTR with the `PA || VN` counter construction used by
//!   secure accelerators for off-chip memory encryption.
//! * [`otp`] — the three pad-generation strategies the paper compares:
//!   T-AES (engine bank), shared-OTP (insecure strawman), and B-AES
//!   (SeDA's single-engine bandwidth-aware mechanism, Algorithm 1).
//! * [`engine`] — AES engine timing (iterative vs pipelined), answering
//!   the bandwidth-sizing questions behind Fig. 4's x-axis.
//! * [`sha256`] — SHA-256 and HMAC-SHA-256, the hash behind block MACs.
//! * [`mac`] — truncated 64-bit block MACs, with and without position
//!   binding, and the XOR-fold used for layer/model MACs (Algorithm 2).
//!
//! # Examples
//!
//! Encrypt a 64 B protected block with the bandwidth-aware strategy and
//! authenticate it with a position-bound MAC:
//!
//! ```
//! use seda_crypto::ctr::CounterSeed;
//! use seda_crypto::mac::{BlockPosition, PositionBoundMac};
//! use seda_crypto::otp::{BandwidthAwareOtp, OtpStrategy};
//!
//! let enc = BandwidthAwareOtp::new([0x2b; 16]);
//! let mac = PositionBoundMac::new([0x7e; 16]);
//!
//! let seed = CounterSeed::new(0x8000, 0);
//! let mut block = [0u8; 64];
//! enc.apply(seed, &mut block); // encrypt
//! let tag = mac.tag(&block, seed.pa, seed.vn, BlockPosition::new(0, 0, 0));
//!
//! enc.apply(seed, &mut block); // decrypt
//! assert_eq!(block, [0u8; 64]);
//! let _ = tag;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod ctr;
pub mod engine;
pub mod mac;
pub mod otp;
pub mod sha256;

pub use aes::Aes128;
pub use ctr::{AesCtr, CounterSeed};
pub use engine::{EngineKind, EngineSizingError, EngineTiming};
pub use mac::{
    BlockPosition, MacTag, PositionBoundMac, PositionlessMac, TagMismatch, XorAccumulator,
};
pub use otp::{BandwidthAwareOtp, OtpStrategy, SharedOtp, TraditionalOtp};
pub use sha256::Sha256;
