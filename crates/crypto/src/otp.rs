//! One-time-pad generation strategies for wide protected blocks.
//!
//! A DNN accelerator moves blocks much wider than one AES block (64 B-512 B)
//! per cycle of off-chip traffic; a single AES engine yields 128 bits per
//! evaluation. The paper contrasts three ways to bridge the gap:
//!
//! * [`TraditionalOtp`] (T-AES) — a bank of N AES engines, each computing a
//!   full AES-CTR evaluation per 16 B segment. Secure, but area and power
//!   scale linearly with bandwidth (Fig. 4).
//! * [`SharedOtp`] — one AES evaluation whose pad is reused across all
//!   segments of the block. Cheap, but broken by the Single-Element
//!   Collision Attack (SECA, Algorithm 1 lines 1-4).
//! * [`BandwidthAwareOtp`] (B-AES) — SeDA's mechanism: one AES evaluation
//!   produces a base pad, and each segment's pad is the base pad XORed with
//!   a distinct round key from the engine's own `keyExpansion` module
//!   (Algorithm 1 lines 5-7). When a block needs more segments than the
//!   schedule has round keys, the key-expansion input is widened to
//!   `key ⊕ (PA || VN || group)` to mint further schedules (§III-B).

use crate::aes::{expand_key, Aes128, Block, BLOCK_BYTES};
use crate::ctr::CounterSeed;

/// Number of segment pads a single key schedule yields in B-AES mode
/// (round keys 1..=10; the raw cipher key itself is never used as a mask).
pub const PADS_PER_SCHEDULE: usize = 10;

/// A pad-generation strategy for one protected data block.
///
/// Implementations return the pad for the `i`-th 16 B segment of the block
/// addressed by `seed`. Encryption and decryption XOR the same pads, so any
/// implementation is self-inverse when applied twice.
///
/// # Examples
///
/// The strategies differ in how many AES-engine evaluations a block costs —
/// the figure of merit behind the paper's Fig. 4:
///
/// ```
/// use seda_crypto::otp::{BandwidthAwareOtp, OtpStrategy, TraditionalOtp};
///
/// let taes = TraditionalOtp::new([0u8; 16]);
/// let baes = BandwidthAwareOtp::new([0u8; 16]);
/// // A 512 B block spans 32 segments of 16 B each.
/// assert_eq!(taes.aes_evaluations(32), 32); // one engine pass per segment
/// assert_eq!(baes.aes_evaluations(32), 4); // base pad + 3 derived schedules
/// ```
pub trait OtpStrategy {
    /// Returns the pad for segment `i` of the block at `seed`.
    fn segment_otp(&self, seed: CounterSeed, i: usize) -> Block;

    /// Number of AES-engine evaluations needed to cover `segments` segments.
    ///
    /// This is the hardware-cost figure of merit: T-AES pays one evaluation
    /// per segment, B-AES pays one per [`PADS_PER_SCHEDULE`] segments (plus
    /// XORs, which are near-free).
    fn aes_evaluations(&self, segments: usize) -> usize;

    /// XORs the strategy's keystream over `data` in place.
    fn apply(&self, seed: CounterSeed, data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(BLOCK_BYTES).enumerate() {
            let pad = self.segment_otp(seed, i);
            for (b, p) in chunk.iter_mut().zip(pad.iter()) {
                *b ^= p;
            }
        }
    }
}

/// T-AES: every 16 B segment pays a full AES-CTR evaluation with a distinct
/// counter. This is the reference secure construction (e.g. Securator's four
/// parallel engines for 64 B blocks).
#[derive(Debug, Clone)]
pub struct TraditionalOtp {
    aes: Aes128,
}

impl TraditionalOtp {
    /// Creates a T-AES pad generator under `key`.
    pub fn new(key: Block) -> Self {
        Self {
            aes: Aes128::new(key),
        }
    }
}

impl OtpStrategy for TraditionalOtp {
    fn segment_otp(&self, seed: CounterSeed, i: usize) -> Block {
        seda_telemetry::counter_add("crypto.otp.taes.evals", 1);
        self.aes.encrypt_block(seed.segment(i as u64).to_block())
    }

    fn aes_evaluations(&self, segments: usize) -> usize {
        segments
    }
}

/// The insecure strawman: a single evaluation whose pad is shared by every
/// segment of the block. Vulnerable to SECA; retained for attack
/// demonstrations and as the baseline the defense is measured against.
#[derive(Debug, Clone)]
pub struct SharedOtp {
    aes: Aes128,
}

impl SharedOtp {
    /// Creates a shared-pad generator under `key`.
    pub fn new(key: Block) -> Self {
        Self {
            aes: Aes128::new(key),
        }
    }
}

impl OtpStrategy for SharedOtp {
    fn segment_otp(&self, seed: CounterSeed, _i: usize) -> Block {
        seda_telemetry::counter_add("crypto.otp.shared.evals", 1);
        self.aes.encrypt_block(seed.to_block())
    }

    fn aes_evaluations(&self, segments: usize) -> usize {
        // An empty block needs no pad at all.
        segments.min(1)
    }
}

/// B-AES: SeDA's bandwidth-aware pad generator.
///
/// Segment `i` within a block gets `base_otp ⊕ key_{1 + (i mod 10)}` where
/// the round keys come from the schedule for group `i / 10`. Group 0 is the
/// engine's resident schedule; higher groups re-run `keyExpansion` on
/// `key ⊕ (PA || VN || group)`, which the paper proposes for blocks whose
/// bandwidth demand exceeds one schedule's supply.
///
/// # Examples
///
/// ```
/// use seda_crypto::ctr::CounterSeed;
/// use seda_crypto::otp::{BandwidthAwareOtp, OtpStrategy};
///
/// let otp = BandwidthAwareOtp::new([7u8; 16]);
/// let seed = CounterSeed::new(0x4000, 2);
/// let mut block = [0u8; 64];
/// otp.apply(seed, &mut block);
/// let encrypted = block;
/// otp.apply(seed, &mut block);
/// assert_eq!(block, [0u8; 64]);
/// assert_ne!(encrypted, [0u8; 64]);
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthAwareOtp {
    key: Block,
    aes: Aes128,
}

impl BandwidthAwareOtp {
    /// Creates a B-AES pad generator under `key`.
    pub fn new(key: Block) -> Self {
        Self {
            key,
            aes: Aes128::new(key),
        }
    }

    /// The base pad for a block: `AES-CTR_K(PA || VN)` (Algorithm 1 line 5).
    pub fn base_otp(&self, seed: CounterSeed) -> Block {
        seda_telemetry::counter_add("crypto.otp.baes.base_evals", 1);
        self.aes.encrypt_block(seed.to_block())
    }

    /// The widened keyExpansion input for schedule group `group` (> 0):
    /// `key ⊕ (PA || VN) ⊕ group`. The full 64-bit group index is folded
    /// into the low eight bytes so that no block size, however large, can
    /// silently alias two groups onto one schedule (a 16-bit fold would
    /// wrap after 2^16 groups ≈ 10 MiB of block).
    fn widened_key(&self, seed: CounterSeed, group: usize) -> Block {
        let mut widened = self.key;
        let ctr = seed.to_block();
        for (w, c) in widened.iter_mut().zip(ctr.iter()) {
            *w ^= c;
        }
        for (w, g) in widened[8..].iter_mut().zip((group as u64).to_be_bytes()) {
            *w ^= g;
        }
        widened
    }

    /// Round-key mask for segment `i`, deriving extra schedules on demand.
    fn mask(&self, seed: CounterSeed, i: usize) -> Block {
        let group = i / PADS_PER_SCHEDULE;
        let slot = 1 + (i % PADS_PER_SCHEDULE);
        if group == 0 {
            self.aes.round_keys()[slot]
        } else {
            seda_telemetry::counter_add("crypto.otp.baes.derived_schedules", 1);
            expand_key(self.widened_key(seed, group))[slot]
        }
    }
}

impl OtpStrategy for BandwidthAwareOtp {
    fn segment_otp(&self, seed: CounterSeed, i: usize) -> Block {
        let base = self.base_otp(seed);
        let mask = self.mask(seed, i);
        core::array::from_fn(|b| base[b] ^ mask[b])
    }

    fn aes_evaluations(&self, segments: usize) -> usize {
        // An empty block needs no evaluation. Otherwise: one evaluation for
        // the base pad; each extra schedule group re-runs key expansion,
        // which occupies the engine for roughly one block time.
        if segments == 0 {
            0
        } else {
            1 + (segments - 1) / PADS_PER_SCHEDULE
        }
    }

    fn apply(&self, seed: CounterSeed, data: &mut [u8]) {
        // Mirror the hardware datapath: the base pad is computed once and
        // each derived schedule once per group, with segments covered by
        // XORs — not one full evaluation per segment as the generic
        // per-segment path would pay.
        let base = self.base_otp(seed);
        let mut group_keys = *self.aes.round_keys();
        let mut current_group = 0usize;
        for (i, chunk) in data.chunks_mut(BLOCK_BYTES).enumerate() {
            let group = i / PADS_PER_SCHEDULE;
            if group != current_group {
                seda_telemetry::counter_add("crypto.otp.baes.derived_schedules", 1);
                group_keys = expand_key(self.widened_key(seed, group));
                current_group = group;
            }
            let mask = &group_keys[1 + (i % PADS_PER_SCHEDULE)];
            for (b, (p, m)) in chunk.iter_mut().zip(base.iter().zip(mask.iter())) {
                *b ^= p ^ m;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed() -> CounterSeed {
        CounterSeed::new(0xA000, 3)
    }

    #[test]
    fn shared_otp_repeats_across_segments() {
        let s = SharedOtp::new([1u8; 16]);
        assert_eq!(s.segment_otp(seed(), 0), s.segment_otp(seed(), 5));
    }

    #[test]
    fn baes_segments_are_pairwise_distinct() {
        let b = BandwidthAwareOtp::new([1u8; 16]);
        let pads: Vec<Block> = (0..32).map(|i| b.segment_otp(seed(), i)).collect();
        for i in 0..pads.len() {
            for j in i + 1..pads.len() {
                assert_ne!(pads[i], pads[j], "segments {i} and {j} share a pad");
            }
        }
    }

    #[test]
    fn taes_segments_are_pairwise_distinct() {
        let t = TraditionalOtp::new([1u8; 16]);
        let pads: Vec<Block> = (0..32).map(|i| t.segment_otp(seed(), i)).collect();
        for i in 0..pads.len() {
            for j in i + 1..pads.len() {
                assert_ne!(pads[i], pads[j]);
            }
        }
    }

    #[test]
    fn baes_roundtrip_512b_block() {
        let b = BandwidthAwareOtp::new([0x33; 16]);
        let mut data: Vec<u8> = (0..512).map(|i| (i % 251) as u8).collect();
        let orig = data.clone();
        b.apply(seed(), &mut data);
        assert_ne!(data, orig);
        b.apply(seed(), &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn evaluation_counts() {
        let b = BandwidthAwareOtp::new([0u8; 16]);
        let t = TraditionalOtp::new([0u8; 16]);
        let s = SharedOtp::new([0u8; 16]);
        // 64 B block = 4 segments.
        assert_eq!(t.aes_evaluations(4), 4);
        assert_eq!(b.aes_evaluations(4), 1);
        assert_eq!(s.aes_evaluations(4), 1);
        // 512 B block = 32 segments.
        assert_eq!(t.aes_evaluations(32), 32);
        assert_eq!(b.aes_evaluations(32), 1 + 31 / PADS_PER_SCHEDULE);
    }

    #[test]
    fn different_blocks_never_share_pads() {
        let b = BandwidthAwareOtp::new([0x77; 16]);
        let a = b.segment_otp(CounterSeed::new(0x1000, 0), 0);
        let c = b.segment_otp(CounterSeed::new(0x1040, 0), 0);
        let d = b.segment_otp(CounterSeed::new(0x1000, 1), 0);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn streaming_apply_matches_per_segment_path() {
        // The optimized apply (base pad + schedule reuse) must produce
        // exactly the pads segment_otp defines, across schedule groups.
        let b = BandwidthAwareOtp::new([0x9c; 16]);
        let seed = CounterSeed::new(0xBEEF000, 12);
        let mut fast: Vec<u8> = (0..512).map(|i| i as u8).collect();
        let reference: Vec<u8> = fast
            .chunks(16)
            .enumerate()
            .flat_map(|(i, chunk)| {
                let pad = b.segment_otp(seed, i);
                chunk
                    .iter()
                    .zip(pad.iter())
                    .map(|(x, p)| x ^ p)
                    .collect::<Vec<u8>>()
            })
            .collect();
        b.apply(seed, &mut fast);
        assert_eq!(fast, reference);
    }

    #[test]
    fn zero_segments_need_zero_evaluations() {
        // Regression: B-AES used to report 1 evaluation for an empty block
        // (`1 + 0.saturating_sub(1)/10`), and SharedOtp a flat 1.
        let b = BandwidthAwareOtp::new([0u8; 16]);
        let t = TraditionalOtp::new([0u8; 16]);
        let s = SharedOtp::new([0u8; 16]);
        assert_eq!(b.aes_evaluations(0), 0);
        assert_eq!(t.aes_evaluations(0), 0);
        assert_eq!(s.aes_evaluations(0), 0);
        // One segment still costs exactly one evaluation everywhere.
        assert_eq!(b.aes_evaluations(1), 1);
        assert_eq!(s.aes_evaluations(1), 1);
    }

    #[test]
    fn group_indices_beyond_16_bits_do_not_alias_schedules() {
        // Regression: the widened key-expansion input used to fold only the
        // low 16 bits of the group index, so groups g and g + 2^16 (blocks
        // past ~10 MiB) silently shared a schedule. The full 64-bit fold
        // must keep their pads distinct.
        let b = BandwidthAwareOtp::new([0x5a; 16]);
        let g = 3usize;
        let near = b.segment_otp(seed(), g * PADS_PER_SCHEDULE);
        let far = b.segment_otp(seed(), (g + (1 << 16)) * PADS_PER_SCHEDULE);
        assert_ne!(near, far, "schedule groups 2^16 apart must not alias");
        let far2 = b.segment_otp(seed(), (g + (1 << 24)) * PADS_PER_SCHEDULE);
        assert_ne!(near, far2);
        assert_ne!(far, far2);
    }

    #[test]
    fn extended_groups_are_deterministic() {
        let b = BandwidthAwareOtp::new([0x42; 16]);
        // Segment 25 lives in group 2; regenerating must be stable so that
        // decryption reproduces encryption pads.
        assert_eq!(b.segment_otp(seed(), 25), b.segment_otp(seed(), 25));
    }
}
