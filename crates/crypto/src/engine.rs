//! Timing model of AES engine micro-architectures.
//!
//! Fig. 4's x-axis is "bandwidth required, in multiples of one engine's" —
//! this module pins down what one engine supplies. Two classic
//! organizations are modelled:
//!
//! * **Iterative** (round-based): one round per cycle, a new 16 B block
//!   every [`AES_ROUNDS`] cycles. The cheap organization Fig. 4's area
//!   constants assume.
//! * **Pipelined** (unrolled): one 16 B block per cycle after an
//!   [`AES_ROUNDS`]-cycle fill, at roughly `AES_ROUNDS`× the area.
//!
//! The model answers the sizing questions the paper's Fig. 4 sweep and the
//! `design_space` example ask: how many engine-equivalents of pad
//! bandwidth does an NPU need, and what latency does OTP generation add
//! before it is hidden by precomputation.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// AES-128 round count (plus the initial AddRoundKey, folded in).
pub const AES_ROUNDS: u64 = 11;

/// Bytes produced per AES evaluation.
pub const PAD_BYTES: u64 = 16;

/// An engine-sizing query that has no meaningful answer: the pad or
/// memory bandwidth was zero, negative, or not finite, so the engine
/// count `ceil(memory / pad)` is undefined.
///
/// Before this error existed, a zero pad bandwidth (an
/// [`EngineTiming`] built by struct literal around the `new` guard, or a
/// degenerate deserialized config) sailed through the division as
/// `inf` and the `as u32` cast silently saturated the answer to
/// `u32::MAX` engines — an absurd sizing that poisoned everything
/// downstream without a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineSizingError {
    /// The requested memory bandwidth, bytes/second.
    pub memory_bandwidth: f64,
    /// The engine's effective pad bandwidth, bytes/second.
    pub pad_bandwidth: f64,
}

impl fmt::Display for EngineSizingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot size AES engines: memory bandwidth {} B/s over pad bandwidth {} B/s \
             is not a finite positive ratio",
            self.memory_bandwidth, self.pad_bandwidth
        )
    }
}

impl Error for EngineSizingError {}

/// AES engine micro-architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// Round-iterative: one block per [`AES_ROUNDS`] cycles, small area.
    Iterative,
    /// Fully unrolled and pipelined: one block per cycle after fill.
    Pipelined,
}

/// Timing model of one AES engine at a given clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineTiming {
    /// Micro-architecture.
    pub kind: EngineKind,
    /// Engine clock in Hz.
    pub clock_hz: f64,
}

impl EngineTiming {
    /// Creates a timing model.
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` is not positive.
    pub fn new(kind: EngineKind, clock_hz: f64) -> Self {
        assert!(clock_hz > 0.0, "clock must be positive");
        Self { kind, clock_hz }
    }

    /// Cycles between successive pad outputs (initiation interval).
    pub fn initiation_interval(&self) -> u64 {
        match self.kind {
            EngineKind::Iterative => AES_ROUNDS,
            EngineKind::Pipelined => 1,
        }
    }

    /// Latency in cycles from counter to pad.
    pub fn latency_cycles(&self) -> u64 {
        AES_ROUNDS
    }

    /// Sustained pad bandwidth in bytes/second.
    pub fn pad_bandwidth(&self) -> f64 {
        PAD_BYTES as f64 * self.clock_hz / self.initiation_interval() as f64
    }

    /// Engine instances needed to keep up with `memory_bandwidth`
    /// (bytes/second) under T-AES, where every 16 B segment pays a full
    /// evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`EngineSizingError`] when either bandwidth is zero,
    /// negative, or not finite — the former silent failure mode, where a
    /// zero pad bandwidth divided to `inf` and the cast saturated the
    /// answer to `u32::MAX` engines.
    pub fn taes_engines_for(&self, memory_bandwidth: f64) -> Result<u32, EngineSizingError> {
        self.engines_for_ratio(memory_bandwidth, self.pad_bandwidth())
    }

    /// Engine instances needed under B-AES, where one evaluation covers
    /// [`crate::otp::PADS_PER_SCHEDULE`] segments via round-key XORs.
    ///
    /// # Errors
    ///
    /// Returns [`EngineSizingError`] under the same conditions as
    /// [`EngineTiming::taes_engines_for`].
    pub fn baes_engines_for(&self, memory_bandwidth: f64) -> Result<u32, EngineSizingError> {
        let effective = self.pad_bandwidth() * crate::otp::PADS_PER_SCHEDULE as f64;
        self.engines_for_ratio(memory_bandwidth, effective)
    }

    /// Bandwidth multiple (Fig. 4's x-axis) an accelerator with
    /// `memory_bandwidth` demands of this engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineSizingError`] under the same conditions as
    /// [`EngineTiming::taes_engines_for`].
    pub fn bandwidth_multiple(&self, memory_bandwidth: f64) -> Result<u32, EngineSizingError> {
        self.taes_engines_for(memory_bandwidth)
    }

    /// `max(1, ceil(memory / pad))` with the degenerate inputs rejected
    /// up front: both bandwidths must be finite and positive for the
    /// engine count to mean anything.
    fn engines_for_ratio(
        &self,
        memory_bandwidth: f64,
        pad_bandwidth: f64,
    ) -> Result<u32, EngineSizingError> {
        let ratio = memory_bandwidth / pad_bandwidth;
        let sizable = memory_bandwidth > 0.0
            && memory_bandwidth.is_finite()
            && pad_bandwidth > 0.0
            && pad_bandwidth.is_finite()
            && ratio <= f64::from(u32::MAX);
        if !sizable {
            return Err(EngineSizingError {
                memory_bandwidth,
                pad_bandwidth,
            });
        }
        Ok(ratio.ceil().max(1.0) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterative_engine_bandwidth() {
        // 1 GHz iterative: 16 B / 11 cycles ≈ 1.45 GB/s.
        let e = EngineTiming::new(EngineKind::Iterative, 1.0e9);
        let bw = e.pad_bandwidth();
        assert!((bw - 16.0e9 / 11.0).abs() < 1.0);
    }

    #[test]
    fn pipelined_is_rounds_times_faster() {
        let it = EngineTiming::new(EngineKind::Iterative, 2.0e9);
        let pl = EngineTiming::new(EngineKind::Pipelined, 2.0e9);
        assert!((pl.pad_bandwidth() / it.pad_bandwidth() - AES_ROUNDS as f64).abs() < 1e-9);
        assert_eq!(it.latency_cycles(), pl.latency_cycles());
    }

    #[test]
    fn tpu_v1_needs_many_iterative_engines() {
        // Server NPU: 20 GB/s at 1 GHz → 14 iterative engines for T-AES,
        // but only 2 for B-AES.
        let e = EngineTiming::new(EngineKind::Iterative, 1.0e9);
        assert_eq!(e.taes_engines_for(20.0e9), Ok(14));
        assert_eq!(e.baes_engines_for(20.0e9), Ok(2));
        assert_eq!(e.bandwidth_multiple(20.0e9), Ok(14));
    }

    #[test]
    fn edge_npu_needs_fewer() {
        // Edge: 10 GB/s at 2.75 GHz.
        let e = EngineTiming::new(EngineKind::Iterative, 2.75e9);
        assert_eq!(e.taes_engines_for(10.0e9), Ok(3));
        assert_eq!(e.baes_engines_for(10.0e9), Ok(1));
    }

    #[test]
    fn baes_never_needs_more_engines_than_taes() {
        let e = EngineTiming::new(EngineKind::Iterative, 1.5e9);
        for gbps in [1.0, 5.0, 10.0, 20.0, 50.0, 100.0] {
            let bw = gbps * 1e9;
            assert!(e.baes_engines_for(bw).unwrap() <= e.taes_engines_for(bw).unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clock_rejected() {
        let _ = EngineTiming::new(EngineKind::Iterative, 0.0);
    }

    #[test]
    fn zero_pad_bandwidth_is_a_typed_error_not_u32_max() {
        // Regression: a zero-clock engine (constructed around the `new`
        // guard, as a deserialized or literal config could be) used to
        // divide to infinity and silently saturate to u32::MAX engines.
        let e = EngineTiming {
            kind: EngineKind::Iterative,
            clock_hz: 0.0,
        };
        assert_eq!(e.pad_bandwidth(), 0.0);
        let err = e.taes_engines_for(20.0e9).expect_err("zero pad bandwidth");
        assert_eq!(err.pad_bandwidth, 0.0);
        assert_eq!(err.memory_bandwidth, 20.0e9);
        assert!(err.to_string().contains("cannot size"), "{err}");
        assert!(e.baes_engines_for(20.0e9).is_err());
        assert!(e.bandwidth_multiple(20.0e9).is_err());
    }

    #[test]
    fn degenerate_memory_bandwidths_are_typed_errors() {
        let e = EngineTiming::new(EngineKind::Iterative, 1.0e9);
        for bad in [0.0, -5.0e9, f64::INFINITY, f64::NAN] {
            assert!(
                e.taes_engines_for(bad).is_err(),
                "memory bandwidth {bad} must not size an engine bank"
            );
        }
        // Astronomically mismatched bandwidths would overflow the count.
        assert!(e.taes_engines_for(f64::MAX).is_err());
    }
}
