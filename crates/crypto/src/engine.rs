//! Timing model of AES engine micro-architectures.
//!
//! Fig. 4's x-axis is "bandwidth required, in multiples of one engine's" —
//! this module pins down what one engine supplies. Two classic
//! organizations are modelled:
//!
//! * **Iterative** (round-based): one round per cycle, a new 16 B block
//!   every [`AES_ROUNDS`] cycles. The cheap organization Fig. 4's area
//!   constants assume.
//! * **Pipelined** (unrolled): one 16 B block per cycle after an
//!   [`AES_ROUNDS`]-cycle fill, at roughly `AES_ROUNDS`× the area.
//!
//! The model answers the sizing questions the paper's Fig. 4 sweep and the
//! `design_space` example ask: how many engine-equivalents of pad
//! bandwidth does an NPU need, and what latency does OTP generation add
//! before it is hidden by precomputation.

use serde::{Deserialize, Serialize};

/// AES-128 round count (plus the initial AddRoundKey, folded in).
pub const AES_ROUNDS: u64 = 11;

/// Bytes produced per AES evaluation.
pub const PAD_BYTES: u64 = 16;

/// AES engine micro-architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// Round-iterative: one block per [`AES_ROUNDS`] cycles, small area.
    Iterative,
    /// Fully unrolled and pipelined: one block per cycle after fill.
    Pipelined,
}

/// Timing model of one AES engine at a given clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineTiming {
    /// Micro-architecture.
    pub kind: EngineKind,
    /// Engine clock in Hz.
    pub clock_hz: f64,
}

impl EngineTiming {
    /// Creates a timing model.
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` is not positive.
    pub fn new(kind: EngineKind, clock_hz: f64) -> Self {
        assert!(clock_hz > 0.0, "clock must be positive");
        Self { kind, clock_hz }
    }

    /// Cycles between successive pad outputs (initiation interval).
    pub fn initiation_interval(&self) -> u64 {
        match self.kind {
            EngineKind::Iterative => AES_ROUNDS,
            EngineKind::Pipelined => 1,
        }
    }

    /// Latency in cycles from counter to pad.
    pub fn latency_cycles(&self) -> u64 {
        AES_ROUNDS
    }

    /// Sustained pad bandwidth in bytes/second.
    pub fn pad_bandwidth(&self) -> f64 {
        PAD_BYTES as f64 * self.clock_hz / self.initiation_interval() as f64
    }

    /// Engine instances needed to keep up with `memory_bandwidth`
    /// (bytes/second) under T-AES, where every 16 B segment pays a full
    /// evaluation.
    pub fn taes_engines_for(&self, memory_bandwidth: f64) -> u32 {
        (memory_bandwidth / self.pad_bandwidth()).ceil().max(1.0) as u32
    }

    /// Engine instances needed under B-AES, where one evaluation covers
    /// [`crate::otp::PADS_PER_SCHEDULE`] segments via round-key XORs.
    pub fn baes_engines_for(&self, memory_bandwidth: f64) -> u32 {
        let effective = self.pad_bandwidth() * crate::otp::PADS_PER_SCHEDULE as f64;
        (memory_bandwidth / effective).ceil().max(1.0) as u32
    }

    /// Bandwidth multiple (Fig. 4's x-axis) an accelerator with
    /// `memory_bandwidth` demands of this engine.
    pub fn bandwidth_multiple(&self, memory_bandwidth: f64) -> u32 {
        self.taes_engines_for(memory_bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterative_engine_bandwidth() {
        // 1 GHz iterative: 16 B / 11 cycles ≈ 1.45 GB/s.
        let e = EngineTiming::new(EngineKind::Iterative, 1.0e9);
        let bw = e.pad_bandwidth();
        assert!((bw - 16.0e9 / 11.0).abs() < 1.0);
    }

    #[test]
    fn pipelined_is_rounds_times_faster() {
        let it = EngineTiming::new(EngineKind::Iterative, 2.0e9);
        let pl = EngineTiming::new(EngineKind::Pipelined, 2.0e9);
        assert!((pl.pad_bandwidth() / it.pad_bandwidth() - AES_ROUNDS as f64).abs() < 1e-9);
        assert_eq!(it.latency_cycles(), pl.latency_cycles());
    }

    #[test]
    fn tpu_v1_needs_many_iterative_engines() {
        // Server NPU: 20 GB/s at 1 GHz → 14 iterative engines for T-AES,
        // but only 2 for B-AES.
        let e = EngineTiming::new(EngineKind::Iterative, 1.0e9);
        assert_eq!(e.taes_engines_for(20.0e9), 14);
        assert_eq!(e.baes_engines_for(20.0e9), 2);
    }

    #[test]
    fn edge_npu_needs_fewer() {
        // Edge: 10 GB/s at 2.75 GHz.
        let e = EngineTiming::new(EngineKind::Iterative, 2.75e9);
        assert_eq!(e.taes_engines_for(10.0e9), 3);
        assert_eq!(e.baes_engines_for(10.0e9), 1);
    }

    #[test]
    fn baes_never_needs_more_engines_than_taes() {
        let e = EngineTiming::new(EngineKind::Iterative, 1.5e9);
        for gbps in [1.0, 5.0, 10.0, 20.0, 50.0, 100.0] {
            let bw = gbps * 1e9;
            assert!(e.baes_engines_for(bw) <= e.taes_engines_for(bw));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clock_rejected() {
        let _ = EngineTiming::new(EngineKind::Iterative, 0.0);
    }
}
