//! AES-128 block cipher (FIPS-197) with an exposed key schedule.
//!
//! SeDA's bandwidth-aware encryption mechanism (paper §III-B, Algorithm 1)
//! derives extra one-time pads by XORing a base pad with the round keys that
//! the engine's `keyExpansion` module already produces. Packaged cipher
//! crates hide the key schedule, so the cipher is implemented in-tree and
//! [`Aes128::round_keys`] is part of the public API.
//!
//! This is a table-free, constant-structure software model intended for
//! functional simulation, not a side-channel-hardened production cipher.

/// Number of 128-bit round keys produced by AES-128 key expansion
/// (one initial key plus ten rounds).
pub const ROUND_KEYS: usize = 11;

/// AES block size in bytes.
pub const BLOCK_BYTES: usize = 16;

/// A single 128-bit AES block.
pub type Block = [u8; BLOCK_BYTES];

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// AES inverse S-box.
const INV_SBOX: [u8; 256] = [
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7, 0xfb,
    0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb,
    0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49, 0x6d, 0x8b, 0xd1, 0x25,
    0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92,
    0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06,
    0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02, 0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b,
    0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e,
    0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b,
    0xfc, 0x56, 0x3e, 0x4b, 0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f,
    0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef,
    0xa0, 0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c, 0x7d,
];

/// Round constants for AES-128 key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply by x (i.e. `{02}`) in GF(2^8) modulo the AES polynomial.
#[inline]
fn xtime(a: u8) -> u8 {
    (a << 1) ^ (((a >> 7) & 1) * 0x1b)
}

/// Multiply two elements of GF(2^8) modulo the AES polynomial.
#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// An AES-128 cipher instance with a precomputed key schedule.
///
/// The eleven round keys are available through [`Aes128::round_keys`]; SeDA's
/// [`crate::otp::BandwidthAwareOtp`] uses them as the XOR masks of
/// Algorithm 1's defense.
///
/// # Examples
///
/// ```
/// use seda_crypto::aes::Aes128;
///
/// let aes = Aes128::new([0u8; 16]);
/// let ct = aes.encrypt_block([0u8; 16]);
/// assert_eq!(aes.decrypt_block(ct), [0u8; 16]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aes128 {
    round_keys: [Block; ROUND_KEYS],
}

impl Aes128 {
    /// Creates a cipher instance, running key expansion on `key`.
    pub fn new(key: Block) -> Self {
        Self {
            round_keys: expand_key(key),
        }
    }

    /// Returns the eleven round keys produced by key expansion.
    ///
    /// Index 0 is the original cipher key; indices 1..=10 are the expanded
    /// round keys. These are the `key_i` values of Algorithm 1 lines 6-7.
    pub fn round_keys(&self) -> &[Block; ROUND_KEYS] {
        &self.round_keys
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: Block) -> Block {
        seda_telemetry::counter_add("crypto.aes.block_evals", 1);
        let mut s = block;
        add_round_key(&mut s, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, &self.round_keys[round]);
        }
        sub_bytes(&mut s);
        shift_rows(&mut s);
        add_round_key(&mut s, &self.round_keys[10]);
        s
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: Block) -> Block {
        seda_telemetry::counter_add("crypto.aes.block_evals", 1);
        let mut s = block;
        add_round_key(&mut s, &self.round_keys[10]);
        for round in (1..10).rev() {
            inv_shift_rows(&mut s);
            inv_sub_bytes(&mut s);
            add_round_key(&mut s, &self.round_keys[round]);
            inv_mix_columns(&mut s);
        }
        inv_shift_rows(&mut s);
        inv_sub_bytes(&mut s);
        add_round_key(&mut s, &self.round_keys[0]);
        s
    }
}

/// Runs AES-128 key expansion, producing the eleven round keys.
pub fn expand_key(key: Block) -> [Block; ROUND_KEYS] {
    seda_telemetry::counter_add("crypto.aes.key_expansions", 1);
    let mut w = [[0u8; 4]; 4 * ROUND_KEYS];
    for (i, word) in w.iter_mut().take(4).enumerate() {
        word.copy_from_slice(&key[4 * i..4 * i + 4]);
    }
    for i in 4..4 * ROUND_KEYS {
        let mut temp = w[i - 1];
        if i % 4 == 0 {
            temp.rotate_left(1);
            for b in temp.iter_mut() {
                *b = SBOX[*b as usize];
            }
            temp[0] ^= RCON[i / 4 - 1];
        }
        for j in 0..4 {
            w[i][j] = w[i - 4][j] ^ temp[j];
        }
    }
    let mut keys = [[0u8; BLOCK_BYTES]; ROUND_KEYS];
    for (r, rk) in keys.iter_mut().enumerate() {
        for c in 0..4 {
            rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
        }
    }
    keys
}

#[inline]
fn add_round_key(state: &mut Block, rk: &Block) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut Block) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut Block) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

/// State layout: byte `state[4*c + r]` is row `r`, column `c` (FIPS-197 §3.4).
#[inline]
fn shift_rows(state: &mut Block) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

#[inline]
fn inv_shift_rows(state: &mut Block) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

#[inline]
fn mix_columns(state: &mut Block) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

#[inline]
fn inv_mix_columns(state: &mut Block) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] =
            gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
        state[4 * c + 1] =
            gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
        state[4 * c + 2] =
            gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
        state[4 * c + 3] =
            gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B example vector.
    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(key);
        assert_eq!(aes.encrypt_block(pt), expected);
        assert_eq!(aes.decrypt_block(expected), pt);
    }

    /// FIPS-197 Appendix C.1 (AES-128) known-answer test.
    #[test]
    fn fips197_appendix_c1() {
        let key: Block = core::array::from_fn(|i| i as u8);
        let pt: Block = core::array::from_fn(|i| (i as u8) * 0x11);
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(key);
        assert_eq!(aes.encrypt_block(pt), expected);
        assert_eq!(aes.decrypt_block(expected), pt);
    }

    /// Key expansion must match the FIPS-197 Appendix A.1 walkthrough.
    #[test]
    fn key_expansion_fips197_a1() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let keys = expand_key(key);
        assert_eq!(keys[0], key);
        // w[4..8] from the FIPS-197 A.1 table.
        assert_eq!(
            keys[1],
            [
                0xa0, 0xfa, 0xfe, 0x17, 0x88, 0x54, 0x2c, 0xb1, 0x23, 0xa3, 0x39, 0x39, 0x2a, 0x6c,
                0x76, 0x05
            ]
        );
        // Final round key w[40..44].
        assert_eq!(
            keys[10],
            [
                0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25, 0x89, 0xe1, 0x3f, 0x0c, 0xc8, 0xb6, 0x63,
                0x0c, 0xa6
            ]
        );
    }

    #[test]
    fn round_keys_are_distinct() {
        let aes = Aes128::new([7u8; 16]);
        let keys = aes.round_keys();
        for i in 0..ROUND_KEYS {
            for j in i + 1..ROUND_KEYS {
                assert_ne!(keys[i], keys[j], "round keys {i} and {j} collide");
            }
        }
    }

    #[test]
    fn gf_multiplication_basics() {
        assert_eq!(gmul(0x57, 0x01), 0x57);
        assert_eq!(gmul(0x57, 0x02), 0xae);
        assert_eq!(gmul(0x57, 0x13), 0xfe); // FIPS-197 §4.2 example
    }

    #[test]
    fn shift_rows_round_trips() {
        let mut s: Block = core::array::from_fn(|i| i as u8);
        let orig = s;
        shift_rows(&mut s);
        assert_ne!(s, orig);
        inv_shift_rows(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn mix_columns_round_trips() {
        let mut s: Block = core::array::from_fn(|i| (i as u8).wrapping_mul(37).wrapping_add(11));
        let orig = s;
        mix_columns(&mut s);
        inv_mix_columns(&mut s);
        assert_eq!(s, orig);
    }
}

#[cfg(test)]
mod aesavs_tests {
    use super::*;

    fn from_hex(s: &str) -> Block {
        let mut b = [0u8; 16];
        for (i, byte) in b.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("hex");
        }
        b
    }

    /// AESAVS GFSbox vectors: key = 0, varying plaintext.
    #[test]
    fn aesavs_gfsbox() {
        let aes = Aes128::new([0u8; 16]);
        for (pt, ct) in [
            (
                "f34481ec3cc627bacd5dc3fb08f273e6",
                "0336763e966d92595a567cc9ce537f5e",
            ),
            (
                "9798c4640bad75c7c3227db910174e72",
                "a9a1631bf4996954ebc093957b234589",
            ),
            (
                "96ab5c2ff612d9dfaae8c31f30c42168",
                "ff4f8391a6a40ca5b25d23bedd44a597",
            ),
            (
                "6a118a874519e64e9963798a503f1d35",
                "dc43be40be0e53712f7e2bf5ca707209",
            ),
            (
                "cb9fceec81286ca3e989bd979b0cb284",
                "92beedab1895a94faa69b632e5cc47ce",
            ),
            (
                "b26aeb1874e47ca8358ff22378f09144",
                "459264f4798f6a78bacb89c15ed3d601",
            ),
            (
                "58c8e00b2631686d54eab84b91f0aca1",
                "08a4e2efec8a8e3312ca7460b9040bbf",
            ),
        ] {
            assert_eq!(aes.encrypt_block(from_hex(pt)), from_hex(ct));
            assert_eq!(aes.decrypt_block(from_hex(ct)), from_hex(pt));
        }
    }

    /// AESAVS KeySbox vectors: plaintext = 0, varying key.
    #[test]
    fn aesavs_keysbox() {
        for (key, ct) in [
            (
                "10a58869d74be5a374cf867cfb473859",
                "6d251e6944b051e04eaa6fb4dbf78465",
            ),
            (
                "caea65cdbb75e9169ecd22ebe6e54675",
                "6e29201190152df4ee058139def610bb",
            ),
            (
                "a2e2fa9baf7d20822ca9f0542f764a41",
                "c3b44b95d9d2f25670eee9a0de099fa3",
            ),
            (
                "b6364ac4e1de1e285eaf144a2415f7a0",
                "5d9b05578fc944b3cf1ccf0e746cd581",
            ),
            (
                "64cf9c7abc50b888af65f49d521944b2",
                "f7efc89d5dba578104016ce5ad659c05",
            ),
        ] {
            let aes = Aes128::new(from_hex(key));
            assert_eq!(aes.encrypt_block([0u8; 16]), from_hex(ct));
        }
    }

    /// AESAVS VarTxt first/last vectors: key = 0, single-bit plaintexts.
    #[test]
    fn aesavs_vartxt_endpoints() {
        let aes = Aes128::new([0u8; 16]);
        assert_eq!(
            aes.encrypt_block(from_hex("80000000000000000000000000000000")),
            from_hex("3ad78e726c1ec02b7ebfe92b23d9ec34")
        );
        assert_eq!(
            aes.encrypt_block(from_hex("ffffffffffffffffffffffffffffffff")),
            from_hex("3f5b8cc9ea855a0afa7347d23e8d664e")
        );
    }
}
