//! Property-based tests for the cryptographic primitives.

use proptest::prelude::*;
use seda_crypto::aes::{expand_key, Aes128, ROUND_KEYS};
use seda_crypto::ctr::{AesCtr, CounterSeed};
use seda_crypto::mac::{xor_fold, BlockPosition, MacTag, PositionBoundMac, XorAccumulator};
use seda_crypto::otp::{
    BandwidthAwareOtp, OtpStrategy, SharedOtp, TraditionalOtp, PADS_PER_SCHEDULE,
};
use seda_crypto::sha256::{hmac_sha256, Sha256};

proptest! {
    #[test]
    fn aes_roundtrips(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes128::new(key);
        prop_assert_eq!(aes.decrypt_block(aes.encrypt_block(block)), block);
    }

    #[test]
    fn aes_is_a_permutation(key in any::<[u8; 16]>(), a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        prop_assume!(a != b);
        let aes = Aes128::new(key);
        prop_assert_ne!(aes.encrypt_block(a), aes.encrypt_block(b));
    }

    #[test]
    fn key_schedule_is_deterministic_and_distinct(key in any::<[u8; 16]>()) {
        let k1 = expand_key(key);
        let k2 = expand_key(key);
        prop_assert_eq!(k1, k2);
        for i in 0..ROUND_KEYS {
            for j in i + 1..ROUND_KEYS {
                prop_assert_ne!(k1[i], k1[j]);
            }
        }
    }

    #[test]
    fn ctr_is_an_involution(key in any::<[u8; 16]>(), pa in any::<u64>(), vn in any::<u64>(),
                            data in prop::collection::vec(any::<u8>(), 0..512)) {
        let ctr = AesCtr::new(key);
        let mut buf = data.clone();
        ctr.apply_keystream(CounterSeed::new(pa, vn), &mut buf);
        ctr.apply_keystream(CounterSeed::new(pa, vn), &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn ctr_keystreams_differ_across_seeds(key in any::<[u8; 16]>(),
                                          pa1 in any::<u64>(), vn1 in 0u64..(1 << 32),
                                          pa2 in any::<u64>(), vn2 in 0u64..(1 << 32)) {
        prop_assume!((pa1, vn1) != (pa2, vn2));
        let ctr = AesCtr::new(key);
        prop_assert_ne!(ctr.otp(CounterSeed::new(pa1, vn1)), ctr.otp(CounterSeed::new(pa2, vn2)));
    }

    #[test]
    fn all_strategies_are_involutions(key in any::<[u8; 16]>(), pa in any::<u64>(),
                                      vn in 0u64..(1 << 32),
                                      data in prop::collection::vec(any::<u8>(), 1..600)) {
        let seed = CounterSeed::new(pa, vn);
        let t = TraditionalOtp::new(key);
        let b = BandwidthAwareOtp::new(key);
        let s = SharedOtp::new(key);
        for strategy in [&t as &dyn OtpStrategy, &b, &s] {
            let mut buf = data.clone();
            strategy.apply(seed, &mut buf);
            strategy.apply(seed, &mut buf);
            prop_assert_eq!(&buf, &data);
        }
    }

    #[test]
    fn baes_pads_distinct_within_block(key in any::<[u8; 16]>(), pa in any::<u64>(), vn in any::<u64>(),
                                       i in 0usize..40, j in 0usize..40) {
        prop_assume!(i != j);
        let b = BandwidthAwareOtp::new(key);
        let seed = CounterSeed::new(pa, vn);
        prop_assert_ne!(b.segment_otp(seed, i), b.segment_otp(seed, j));
    }

    #[test]
    fn baes_engine_cost_is_sublinear(segments in 1usize..200) {
        let b = BandwidthAwareOtp::new([0u8; 16]);
        let evals = b.aes_evaluations(segments);
        prop_assert!(evals <= 1 + segments / PADS_PER_SCHEDULE);
        prop_assert!(evals >= 1);
    }

    #[test]
    fn sha256_is_deterministic_and_length_sensitive(data in prop::collection::vec(any::<u8>(), 0..300)) {
        let d1 = Sha256::digest(&data);
        let d2 = Sha256::digest(&data);
        prop_assert_eq!(d1, d2);
        let mut extended = data.clone();
        extended.push(0);
        prop_assert_ne!(Sha256::digest(&extended), d1);
    }

    #[test]
    fn sha256_incremental_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..400),
                                         split in 0usize..400) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn hmac_differs_under_different_keys(k1 in any::<[u8; 16]>(), k2 in any::<[u8; 16]>(),
                                         data in prop::collection::vec(any::<u8>(), 0..100)) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(hmac_sha256(&k1, &data), hmac_sha256(&k2, &data));
    }

    #[test]
    fn xor_fold_is_commutative_and_self_cancelling(tags in prop::collection::vec(any::<u64>(), 0..40)) {
        let tags: Vec<MacTag> = tags.into_iter().map(MacTag).collect();
        let mut shuffled = tags.clone();
        shuffled.reverse();
        prop_assert_eq!(xor_fold(tags.iter().copied()), xor_fold(shuffled));
        // Folding every tag twice cancels to zero.
        let doubled = tags.iter().chain(tags.iter()).copied();
        prop_assert_eq!(xor_fold(doubled), MacTag(0));
    }

    #[test]
    fn accumulator_replace_is_consistent(tags in prop::collection::vec(any::<u64>(), 1..20),
                                         new_tag in any::<u64>(), idx in 0usize..20) {
        let tags: Vec<MacTag> = tags.into_iter().map(MacTag).collect();
        let idx = idx % tags.len();
        let mut acc = XorAccumulator::new();
        for t in &tags {
            acc.add(*t);
        }
        acc.replace(tags[idx], MacTag(new_tag));
        let mut rebuilt = tags.clone();
        rebuilt[idx] = MacTag(new_tag);
        prop_assert_eq!(acc.value(), xor_fold(rebuilt));
    }

    #[test]
    fn position_bound_macs_separate_positions(data in prop::collection::vec(any::<u8>(), 1..128),
                                              l1 in any::<u32>(), b1 in any::<u32>(),
                                              l2 in any::<u32>(), b2 in any::<u32>()) {
        prop_assume!((l1, b1) != (l2, b2));
        let mac = PositionBoundMac::new([0x33; 16]);
        let t1 = mac.tag(&data, 0, 0, BlockPosition::new(l1, 0, b1));
        let t2 = mac.tag(&data, 0, 0, BlockPosition::new(l2, 0, b2));
        prop_assert_ne!(t1, t2);
    }
}
