//! Cross-crate integration tests for the SeDA workspace.
//!
//! The library half holds the golden-fixture machinery shared by the
//! regression suites under `tests/`: the pinned-figure schema, the
//! fixture path resolution, and the `UPDATE_GOLDEN=1` blessing flow.

pub mod golden {
    //! Golden-figure fixtures: schema types and the compare/bless helper.
    //!
    //! Figures are pinned as `seda-golden/v1` JSON under
    //! `tests/fixtures/` and compared **bit-for-bit**; the simulator is
    //! deterministic, so any diff means the model changed.

    use seda::experiment::Evaluation;
    use serde::Serialize;
    use std::path::PathBuf;

    /// One sweep point's raw, unnormalized outcome.
    #[derive(Serialize, Clone)]
    pub struct GoldenPoint {
        /// NPU label.
        pub npu: String,
        /// Workload label.
        pub workload: String,
        /// Scheme label.
        pub scheme: String,
        /// Total runtime in accelerator cycles.
        pub total_cycles: u64,
        /// Total off-chip traffic in bytes.
        pub traffic_bytes: u64,
    }

    /// Per-NPU per-scheme arithmetic mean of the figure's normalized
    /// metric.
    #[derive(Serialize)]
    pub struct SchemeMean {
        /// NPU label.
        pub npu: String,
        /// Scheme label.
        pub scheme: String,
        /// Mean of the normalized metric over the workloads.
        pub mean: f64,
    }

    /// A pinned figure: the normalized means plus every raw point behind
    /// them.
    #[derive(Serialize)]
    pub struct GoldenFigure {
        /// Always `"seda-golden/v1"`.
        pub schema: String,
        /// Figure label (e.g. `"fig5_normalized_traffic"`).
        pub figure: String,
        /// Normalized per-scheme means.
        pub means: Vec<SchemeMean>,
        /// Raw sweep points.
        pub points: Vec<GoldenPoint>,
    }

    fn golden_points(evals: &[Evaluation]) -> Vec<GoldenPoint> {
        evals
            .iter()
            .flat_map(|eval| {
                eval.workloads.iter().flat_map(|w| {
                    w.outcomes.iter().map(|o| GoldenPoint {
                        npu: eval.npu.clone(),
                        workload: w.workload.clone(),
                        scheme: o.scheme.clone(),
                        total_cycles: o.run.total_cycles,
                        traffic_bytes: o.run.traffic.total(),
                    })
                })
            })
            .collect()
    }

    /// Builds the pinned-figure payload for a set of evaluations.
    pub fn golden_figure_of(
        evals: &[Evaluation],
        figure: &str,
        mean_of: impl Fn(&Evaluation) -> Vec<(String, f64)>,
    ) -> GoldenFigure {
        let means = evals
            .iter()
            .flat_map(|eval| {
                mean_of(eval).into_iter().map(|(scheme, mean)| SchemeMean {
                    npu: eval.npu.clone(),
                    scheme,
                    mean,
                })
            })
            .collect();
        GoldenFigure {
            schema: "seda-golden/v1".to_owned(),
            figure: figure.to_owned(),
            means,
            points: golden_points(evals),
        }
    }

    /// Absolute path of a fixture under `tests/fixtures/`.
    pub fn fixture_path(name: &str) -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name)
    }

    /// Compares `generated` byte-for-byte against the named fixture, or
    /// rewrites the fixture when `UPDATE_GOLDEN` is set in the
    /// environment.
    ///
    /// # Panics
    ///
    /// Panics when the fixture is missing or `generated` drifts from it.
    pub fn check_golden(name: &str, generated: &str) {
        let path = fixture_path(name);
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(&path, generated).expect("fixture directory is writable");
            return;
        }
        let pinned = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); bless it with UPDATE_GOLDEN=1",
                path.display()
            )
        });
        assert_eq!(
            generated, pinned,
            "{name} drifted from the pinned golden figure; if the change is \
             intentional, regenerate with UPDATE_GOLDEN=1 cargo test -p \
             seda-integration-tests"
        );
    }
}
