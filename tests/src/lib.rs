//! Cross-crate integration tests for the SeDA workspace.
