//! JSON serialization round-trips for the result types the experiment
//! dumps rely on (`fig5_memory_traffic <path>` writes these to disk).

use seda::experiment::evaluate;
use seda::pipeline::run_model;
use seda_models::zoo;
use seda_protect::Unprotected;
use seda_scalesim::{simulate_model, NpuConfig, TilePlan};

#[test]
fn run_result_round_trips_through_json() {
    let npu = NpuConfig::edge();
    let r = run_model(&npu, &zoo::lenet(), &mut Unprotected::new());
    let json = serde_json::to_string(&r).expect("serializes");
    let back: seda::pipeline::RunResult = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.total_cycles, r.total_cycles);
    assert_eq!(back.traffic, r.traffic);
    assert_eq!(back.layers.len(), r.layers.len());
}

#[test]
fn evaluation_round_trips_through_json() {
    let eval = evaluate(&NpuConfig::edge(), &[zoo::lenet()]);
    let json = serde_json::to_string(&eval).expect("serializes");
    let back: seda::experiment::Evaluation = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.npu, eval.npu);
    assert_eq!(back.workloads.len(), eval.workloads.len());
    // JSON prints floats with shortest-round-trip semantics; allow the
    // last-ulp wiggle serde_json's parser reintroduces.
    let a = back.workloads[0].outcomes[1].traffic_norm;
    let b = eval.workloads[0].outcomes[1].traffic_norm;
    assert!((a - b).abs() < 1e-12, "{a} vs {b}");
}

#[test]
fn model_and_plan_round_trip_through_json() {
    let model = zoo::mobilenet();
    let json = serde_json::to_string(&model).expect("model serializes");
    let back: seda_models::Model = serde_json::from_str(&json).expect("model deserializes");
    assert_eq!(back, model);

    let plan = seda_scalesim::plan_layer(&NpuConfig::edge(), &model.layers()[3]);
    let json = serde_json::to_string(&plan).expect("plan serializes");
    let back: TilePlan = serde_json::from_str(&json).expect("plan deserializes");
    assert_eq!(back, plan);
}

#[test]
fn npu_config_round_trips_through_json() {
    for cfg in [NpuConfig::server(), NpuConfig::edge()] {
        let json = serde_json::to_string(&cfg).expect("serializes");
        let back: NpuConfig = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, cfg);
    }
}

#[test]
fn model_sim_round_trips_without_address_map() {
    // The address map is runtime state and marked #[serde(skip)].
    let sim = simulate_model(&NpuConfig::edge(), &zoo::lenet());
    let json = serde_json::to_string(&sim).expect("serializes");
    let back: seda_scalesim::ModelSim = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.layers.len(), sim.layers.len());
    assert!(back.address_map.is_none());
}
