//! End-to-end telemetry: install the shared sink once, drive both the
//! functional crypto path and the timing sweep path, and check that every
//! instrumented subsystem shows up in the snapshot — the same flow
//! `seda_cli --telemetry out.json quickstart` ships.
//!
//! The global sink can be installed only once per process, so this file
//! holds a single test.

use seda::functional::{run_protected, run_reference};
use seda::models::zoo;
use seda::scalesim::NpuConfig;
use seda::sweep::Sweep;
use seda::telemetry;

#[test]
fn every_instrumented_subsystem_reports_through_the_shared_sink() {
    let sink = telemetry::install_shared().expect("first and only install in this process");

    // Functional path: AES/OTP/MAC counters.
    let model = zoo::lenet();
    let input: Vec<u8> = (0..32 * 32).map(|i| (i % 23) as u8).collect();
    let reference = run_reference(&model, &input);
    let protected = run_protected(&model, &input, |_| {}).expect("honest run verifies");
    assert_eq!(protected, reference);

    // Timing path: trace cache, DRAM flush, metadata caches, sweep span.
    let results = Sweep::new()
        .npu(NpuConfig::edge())
        .model(zoo::lenet())
        .schemes(["baseline", "SGX-64B", "SeDA"])
        .run();
    assert_eq!(results.stats.trace_misses, 1);

    let snap = sink.snapshot();
    for counter in [
        "crypto.aes.block_evals",
        "crypto.otp.baes.base_evals",
        "protect.mac_cache.hits",
        "protect.mac_cache.misses",
        "dram.reads",
        "dram.bus_busy_cycles",
        "scalesim.trace_cache.misses",
        "pipeline.inferences",
        "sweep.points.ok",
    ] {
        assert!(
            snap.counter(counter).unwrap_or(0) > 0,
            "counter {counter} must be nonzero after the end-to-end run"
        );
    }
    for histogram in [
        "dram.bank_occupancy_cycles",
        "pipeline.layer_cycles",
        "sweep.point_ns",
    ] {
        assert!(
            snap.histogram(histogram).map(|h| h.count).unwrap_or(0) > 0,
            "histogram {histogram} must have samples after the end-to-end run"
        );
    }

    // The JSON export carries the stable schema tag and the two
    // top-level maps of the seda-telemetry/v1 schema.
    let json = snap.to_json();
    assert!(json.starts_with("{\n"));
    assert!(json.contains("\"schema\": \"seda-telemetry/v1\""));
    assert!(json.contains("\"counters\": {"));
    assert!(json.contains("\"histograms\": {"));
}
