//! Scenario-engine golden suite.
//!
//! Two jobs:
//!
//! 1. **Fixture identity.** The `golden_subset` scenario mirrors the
//!    golden-figure axes (LeNet + DLRM x server/edge x the full paper
//!    lineup). Running it through the declarative scenario path must
//!    reproduce the pinned `fig5`/`fig6` fixtures **byte-for-byte** —
//!    the scenario engine is a refactor of the experiment binaries, not
//!    a new model. These comparisons read the fixtures directly and
//!    never rewrite them: `UPDATE_GOLDEN=1` cannot re-bless the paper
//!    figures through this suite.
//!
//! 2. **New-scenario pins.** The two workload scenarios introduced with
//!    the zoo — transformer autoregressive decode and DLRM
//!    embedding-gather — get their own `seda-scenario/v1` snapshot
//!    fixtures, blessed the usual way:
//!
//!    ```text
//!    UPDATE_GOLDEN=1 cargo test -p seda-integration-tests --test scenario_golden
//!    ```

use seda::experiment::Evaluation;
use seda::protect::scheme_by_name;
use seda::report::table3;
use seda::scenario::{self, ScenarioRun, SchemeSpec};
use seda_integration_tests::golden::{check_golden, fixture_path, golden_figure_of};
use std::sync::OnceLock;

fn golden_subset_run() -> &'static ScenarioRun {
    static RUN: OnceLock<ScenarioRun> = OnceLock::new();
    RUN.get_or_init(|| {
        scenario::load("golden_subset")
            .and_then(|s| s.run())
            .expect("golden_subset scenario runs")
    })
}

fn pinned(name: &str) -> String {
    std::fs::read_to_string(fixture_path(name))
        .expect("fixture exists (bless with UPDATE_GOLDEN=1 --test golden_figures)")
}

#[test]
fn scenario_path_reproduces_the_pinned_fig5_fixture() {
    let run = golden_subset_run();
    let fig = golden_figure_of(
        &run.evaluations,
        "fig5_normalized_traffic",
        Evaluation::mean_traffic,
    );
    let json = serde_json::to_string_pretty(&fig).expect("golden figure serializes");
    assert_eq!(
        json,
        pinned("fig5_traffic.golden.json"),
        "the scenario engine must be bit-identical to the direct fig5 path"
    );
}

#[test]
fn scenario_path_reproduces_the_pinned_fig6_fixture() {
    let run = golden_subset_run();
    let fig = golden_figure_of(
        &run.evaluations,
        "fig6_normalized_runtime",
        Evaluation::mean_perf,
    );
    let json = serde_json::to_string_pretty(&fig).expect("golden figure serializes");
    assert_eq!(
        json,
        pinned("fig6_perf.golden.json"),
        "the scenario engine must be bit-identical to the direct fig6 path"
    );
}

#[test]
fn scenario_scheme_labels_reproduce_the_pinned_table3() {
    // The golden_subset lineup is spelled as registry names in JSON; the
    // labels must resolve to the same schemes (and thus the same Table
    // III feature matrix) as the hand-built paper lineup.
    let s = scenario::load("golden_subset").expect("golden_subset scenario loads");
    let infos: Vec<_> = s
        .schemes
        .iter()
        .map(|spec| {
            assert!(matches!(spec, SchemeSpec::Registry { .. }));
            scheme_by_name(&spec.label())
                .expect("scenario labels are registry names")
                .info()
        })
        .collect();
    assert_eq!(
        table3(&infos),
        pinned("table3.golden.txt"),
        "scenario scheme labels must resolve to the pinned Table III lineup"
    );
}

#[test]
fn transformer_decode_scenario_matches_golden() {
    let run = scenario::load("transformer_decode")
        .and_then(|s| s.run())
        .expect("transformer_decode scenario runs");
    check_golden(
        "scenario_transformer_decode.golden.json",
        &run.snapshot_json(),
    );
}

#[test]
fn dlrm_gather_scenario_matches_golden() {
    let run = scenario::load("dlrm_gather")
        .and_then(|s| s.run())
        .expect("dlrm_gather scenario runs");
    check_golden("scenario_dlrm_gather.golden.json", &run.snapshot_json());
}
