//! Golden-figure regression suite.
//!
//! The paper's headline aggregates — the Table III feature matrix and the
//! Fig. 5 (normalized traffic) / Fig. 6 (normalized runtime) numbers — are
//! pinned as fixtures under `tests/fixtures/` and compared **bit-for-bit**
//! against a fresh evaluation. The simulator is deterministic, so any
//! diff, down to a single cycle, means the model changed and the figures
//! it produces drifted.
//!
//! The fixtures cover a two-workload subset (LeNet + DLRM: one conv, one
//! GEMM workload) on both NPUs so the suite stays fast in debug builds;
//! the full 13-workload sweep exercises the same code paths.
//!
//! To bless an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p seda-integration-tests --test golden_figures
//! ```

use seda::experiment::{evaluate_suites, Evaluation};
use seda::models::zoo;
use seda::protect::paper_lineup;
use seda::report::table3;
use seda::scalesim::NpuConfig;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::OnceLock;

/// One sweep point's raw, unnormalized outcome.
#[derive(Serialize, Clone)]
struct GoldenPoint {
    npu: String,
    workload: String,
    scheme: String,
    total_cycles: u64,
    traffic_bytes: u64,
}

/// Per-NPU per-scheme arithmetic mean of the figure's normalized metric.
#[derive(Serialize)]
struct SchemeMean {
    npu: String,
    scheme: String,
    mean: f64,
}

/// A pinned figure: the normalized means plus every raw point behind them.
#[derive(Serialize)]
struct GoldenFigure {
    schema: String,
    figure: String,
    means: Vec<SchemeMean>,
    points: Vec<GoldenPoint>,
}

fn evaluations() -> &'static Vec<Evaluation> {
    static EVALS: OnceLock<Vec<Evaluation>> = OnceLock::new();
    EVALS.get_or_init(|| {
        let npus = [NpuConfig::server(), NpuConfig::edge()];
        let models = [zoo::lenet(), zoo::dlrm()];
        evaluate_suites(&npus, &models)
    })
}

fn golden_points(evals: &[Evaluation]) -> Vec<GoldenPoint> {
    evals
        .iter()
        .flat_map(|eval| {
            eval.workloads.iter().flat_map(|w| {
                w.outcomes.iter().map(|o| GoldenPoint {
                    npu: eval.npu.clone(),
                    workload: w.workload.clone(),
                    scheme: o.scheme.clone(),
                    total_cycles: o.run.total_cycles,
                    traffic_bytes: o.run.traffic.total(),
                })
            })
        })
        .collect()
}

fn golden_figure_of(
    evals: &[Evaluation],
    figure: &str,
    mean_of: impl Fn(&Evaluation) -> Vec<(String, f64)>,
) -> GoldenFigure {
    let means = evals
        .iter()
        .flat_map(|eval| {
            mean_of(eval).into_iter().map(|(scheme, mean)| SchemeMean {
                npu: eval.npu.clone(),
                scheme,
                mean,
            })
        })
        .collect();
    GoldenFigure {
        schema: "seda-golden/v1".to_owned(),
        figure: figure.to_owned(),
        means,
        points: golden_points(evals),
    }
}

fn golden_figure(
    figure: &str,
    mean_of: impl Fn(&Evaluation) -> Vec<(String, f64)>,
) -> GoldenFigure {
    golden_figure_of(evaluations(), figure, mean_of)
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Compares `generated` byte-for-byte against the named fixture, or
/// rewrites the fixture when `UPDATE_GOLDEN` is set in the environment.
fn check_golden(name: &str, generated: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, generated).expect("fixture directory is writable");
        return;
    }
    let pinned = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); bless it with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        generated, pinned,
        "{name} drifted from the pinned golden figure; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1 cargo test -p \
         seda-integration-tests --test golden_figures"
    );
}

#[test]
fn table3_feature_matrix_matches_golden() {
    let infos: Vec<_> = paper_lineup().iter().map(|s| s.info()).collect();
    check_golden("table3.golden.txt", &table3(&infos));
}

#[test]
fn fig5_normalized_traffic_matches_golden() {
    let fig = golden_figure("fig5_normalized_traffic", Evaluation::mean_traffic);
    let json = serde_json::to_string_pretty(&fig).expect("golden figure serializes");
    check_golden("fig5_traffic.golden.json", &json);
}

#[test]
fn fig6_normalized_runtime_matches_golden() {
    let fig = golden_figure("fig6_normalized_runtime", Evaluation::mean_perf);
    let json = serde_json::to_string_pretty(&fig).expect("golden figure serializes");
    check_golden("fig6_perf.golden.json", &json);
}

/// Renders the Fig. 6 snapshot the pinned shape would produce under a
/// perturbed per-NPU DRAM configuration.
fn fig6_with_dram_map(
    map: impl Fn(&NpuConfig) -> seda_dram::DramConfig + Send + Sync + 'static,
) -> String {
    let npus = [NpuConfig::server(), NpuConfig::edge()];
    let models = [zoo::lenet(), zoo::dlrm()];
    let evals = seda::experiment::evaluate_suites_dram_mapped(&npus, &models, map);
    let fig = golden_figure_of(&evals, "fig6_normalized_runtime", Evaluation::mean_perf);
    serde_json::to_string_pretty(&fig).expect("golden figure serializes")
}

#[test]
fn one_cycle_burst_perturbation_flips_the_fig6_comparison() {
    // The fixtures must pin the DRAM timing path, not just the compute
    // model: lengthening every data burst by a single memory cycle has to
    // produce a different Fig. 6 snapshot than the pinned one.
    let perturbed = fig6_with_dram_map(|npu| {
        let mut cfg = seda::pipeline::dram_config_for(npu);
        cfg.t_bl += 1;
        cfg
    });
    let pinned = std::fs::read_to_string(fixture_path("fig6_perf.golden.json"))
        .expect("fixture exists (bless with UPDATE_GOLDEN=1)");
    assert_ne!(
        perturbed, pinned,
        "a one-cycle t_bl perturbation must change the golden snapshot"
    );
}

#[test]
fn one_cycle_refresh_window_perturbation_flips_the_fig6_comparison() {
    let perturbed = fig6_with_dram_map(|npu| {
        let mut cfg = seda::pipeline::dram_config_for(npu);
        cfg.t_rfc += 1;
        cfg
    });
    let pinned = std::fs::read_to_string(fixture_path("fig6_perf.golden.json"))
        .expect("fixture exists (bless with UPDATE_GOLDEN=1)");
    assert_ne!(
        perturbed, pinned,
        "a one-cycle refresh-window perturbation must change the golden snapshot"
    );
}

#[test]
fn unperturbed_dram_map_reproduces_the_pinned_fig6() {
    // Control for the two sensitivity tests above: the same override
    // path with the *unmodified* configuration must land exactly on the
    // fixture, so the flips can only come from the perturbations.
    let same = fig6_with_dram_map(seda::pipeline::dram_config_for);
    let pinned = std::fs::read_to_string(fixture_path("fig6_perf.golden.json"))
        .expect("fixture exists (bless with UPDATE_GOLDEN=1)");
    assert_eq!(
        same, pinned,
        "the dram_map override path must be bit-identical to the default path"
    );
}

#[test]
fn golden_compare_detects_a_one_cycle_perturbation() {
    // Sensitivity self-test: the fixture comparison must catch the
    // smallest possible drift — one cycle on one point.
    let mut fig = golden_figure("fig6_normalized_runtime", Evaluation::mean_perf);
    fig.points[0].total_cycles += 1;
    let perturbed = serde_json::to_string_pretty(&fig).expect("golden figure serializes");
    let pinned = std::fs::read_to_string(fixture_path("fig6_perf.golden.json"))
        .expect("fixture exists (bless with UPDATE_GOLDEN=1)");
    assert_ne!(
        perturbed, pinned,
        "a one-cycle perturbation must change the golden snapshot"
    );
}
