//! Golden-figure regression suite.
//!
//! The paper's headline aggregates — the Table III feature matrix and the
//! Fig. 5 (normalized traffic) / Fig. 6 (normalized runtime) numbers — are
//! pinned as fixtures under `tests/fixtures/` and compared **bit-for-bit**
//! against a fresh evaluation. The simulator is deterministic, so any
//! diff, down to a single cycle, means the model changed and the figures
//! it produces drifted.
//!
//! The fixtures cover a two-workload subset (LeNet + DLRM: one conv, one
//! GEMM workload) on both NPUs so the suite stays fast in debug builds;
//! the full 13-workload sweep exercises the same code paths.
//!
//! To bless an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p seda-integration-tests --test golden_figures
//! ```

use seda::experiment::{evaluate_suites, Evaluation};
use seda::models::zoo;
use seda::protect::paper_lineup;
use seda::report::table3;
use seda::scalesim::NpuConfig;
use seda_integration_tests::golden::{check_golden, fixture_path, golden_figure_of, GoldenFigure};
use std::sync::OnceLock;

fn evaluations() -> &'static Vec<Evaluation> {
    static EVALS: OnceLock<Vec<Evaluation>> = OnceLock::new();
    EVALS.get_or_init(|| {
        let npus = [NpuConfig::server(), NpuConfig::edge()];
        let models = [zoo::lenet(), zoo::dlrm()];
        evaluate_suites(&npus, &models)
    })
}

fn golden_figure(
    figure: &str,
    mean_of: impl Fn(&Evaluation) -> Vec<(String, f64)>,
) -> GoldenFigure {
    golden_figure_of(evaluations(), figure, mean_of)
}

#[test]
fn table3_feature_matrix_matches_golden() {
    let infos: Vec<_> = paper_lineup().iter().map(|s| s.info()).collect();
    check_golden("table3.golden.txt", &table3(&infos));
}

#[test]
fn fig5_normalized_traffic_matches_golden() {
    let fig = golden_figure("fig5_normalized_traffic", Evaluation::mean_traffic);
    let json = serde_json::to_string_pretty(&fig).expect("golden figure serializes");
    check_golden("fig5_traffic.golden.json", &json);
}

#[test]
fn fig6_normalized_runtime_matches_golden() {
    let fig = golden_figure("fig6_normalized_runtime", Evaluation::mean_perf);
    let json = serde_json::to_string_pretty(&fig).expect("golden figure serializes");
    check_golden("fig6_perf.golden.json", &json);
}

/// Renders the Fig. 6 snapshot the pinned shape would produce under a
/// perturbed per-NPU DRAM configuration.
fn fig6_with_dram_map(
    map: impl Fn(&NpuConfig) -> seda_dram::DramConfig + Send + Sync + 'static,
) -> String {
    let npus = [NpuConfig::server(), NpuConfig::edge()];
    let models = [zoo::lenet(), zoo::dlrm()];
    let evals = seda::experiment::evaluate_suites_dram_mapped(&npus, &models, map);
    let fig = golden_figure_of(&evals, "fig6_normalized_runtime", Evaluation::mean_perf);
    serde_json::to_string_pretty(&fig).expect("golden figure serializes")
}

#[test]
fn one_cycle_burst_perturbation_flips_the_fig6_comparison() {
    // The fixtures must pin the DRAM timing path, not just the compute
    // model: lengthening every data burst by a single memory cycle has to
    // produce a different Fig. 6 snapshot than the pinned one.
    let perturbed = fig6_with_dram_map(|npu| {
        let mut cfg = seda::pipeline::dram_config_for(npu);
        cfg.t_bl += 1;
        cfg
    });
    let pinned = std::fs::read_to_string(fixture_path("fig6_perf.golden.json"))
        .expect("fixture exists (bless with UPDATE_GOLDEN=1)");
    assert_ne!(
        perturbed, pinned,
        "a one-cycle t_bl perturbation must change the golden snapshot"
    );
}

#[test]
fn one_cycle_refresh_window_perturbation_flips_the_fig6_comparison() {
    let perturbed = fig6_with_dram_map(|npu| {
        let mut cfg = seda::pipeline::dram_config_for(npu);
        cfg.t_rfc += 1;
        cfg
    });
    let pinned = std::fs::read_to_string(fixture_path("fig6_perf.golden.json"))
        .expect("fixture exists (bless with UPDATE_GOLDEN=1)");
    assert_ne!(
        perturbed, pinned,
        "a one-cycle refresh-window perturbation must change the golden snapshot"
    );
}

#[test]
fn unperturbed_dram_map_reproduces_the_pinned_fig6() {
    // Control for the two sensitivity tests above: the same override
    // path with the *unmodified* configuration must land exactly on the
    // fixture, so the flips can only come from the perturbations.
    let same = fig6_with_dram_map(seda::pipeline::dram_config_for);
    let pinned = std::fs::read_to_string(fixture_path("fig6_perf.golden.json"))
        .expect("fixture exists (bless with UPDATE_GOLDEN=1)");
    assert_eq!(
        same, pinned,
        "the dram_map override path must be bit-identical to the default path"
    );
}

#[test]
fn golden_compare_detects_a_one_cycle_perturbation() {
    // Sensitivity self-test: the fixture comparison must catch the
    // smallest possible drift — one cycle on one point.
    let mut fig = golden_figure("fig6_normalized_runtime", Evaluation::mean_perf);
    fig.points[0].total_cycles += 1;
    let perturbed = serde_json::to_string_pretty(&fig).expect("golden figure serializes");
    let pinned = std::fs::read_to_string(fixture_path("fig6_perf.golden.json"))
        .expect("fixture exists (bless with UPDATE_GOLDEN=1)");
    assert_ne!(
        perturbed, pinned,
        "a one-cycle perturbation must change the golden snapshot"
    );
}
