//! Cross-crate integration tests: invariants of the full
//! model → scalesim → protection → DRAM pipeline.

use seda::pipeline::run_model;
use seda::protect::{
    BlockMacKind, BlockMacScheme, LayerMacStore, ProtectionScheme, SedaScheme, Unprotected,
    PROTECTED_BYTES,
};
use seda::scalesim::NpuConfig;
use seda_models::zoo;

fn schemes() -> Vec<Box<dyn ProtectionScheme>> {
    seda::protect::paper_lineup()
}

#[test]
fn every_scheme_preserves_demand_traffic() {
    // Protection may add metadata and overfetch, but the demand bytes the
    // accelerator asked for must be identical across schemes.
    let npu = NpuConfig::edge();
    let model = zoo::lenet();
    let mut demands = Vec::new();
    for mut s in schemes() {
        let r = run_model(&npu, &model, s.as_mut());
        demands.push((r.scheme.clone(), r.traffic.demand()));
    }
    let (first_name, first) = &demands[0];
    for (name, d) in &demands {
        assert_eq!(d, first, "{name} demand differs from {first_name}");
    }
}

#[test]
fn traffic_ordering_holds_on_both_npus() {
    for npu in [NpuConfig::server(), NpuConfig::edge()] {
        for model in [zoo::lenet(), zoo::ncf()] {
            let mut totals = std::collections::HashMap::new();
            for mut s in schemes() {
                let r = run_model(&npu, &model, s.as_mut());
                totals.insert(r.scheme.clone(), r.traffic.total());
            }
            let t = |n: &str| totals[n];
            assert!(t("SGX-64B") > t("MGX-64B"), "{}/{}", npu.name, model.name());
            assert!(
                t("SGX-512B") > t("MGX-512B"),
                "{}/{}",
                npu.name,
                model.name()
            );
            assert!(t("MGX-64B") > t("SeDA"), "{}/{}", npu.name, model.name());
            assert!(t("SeDA") >= t("baseline"), "{}/{}", npu.name, model.name());
        }
    }
}

#[test]
fn dram_accesses_match_traffic_bytes() {
    // Every request is a 64 B line, so the DRAM access count must equal
    // the scheme's byte tally divided by 64 exactly.
    let npu = NpuConfig::edge();
    let model = zoo::dlrm();
    for mut s in schemes() {
        let r = run_model(&npu, &model, s.as_mut());
        assert_eq!(
            r.dram.accesses() * 64,
            r.traffic.total(),
            "{}: DRAM accesses disagree with the traffic tally",
            r.scheme
        );
    }
}

#[test]
fn runtime_is_bounded_by_compute_and_memory() {
    let npu = NpuConfig::server();
    let model = zoo::alexnet();
    let r = run_model(&npu, &model, &mut Unprotected::new());
    for l in &r.layers {
        assert_eq!(
            l.cycles,
            l.compute_cycles.max(l.memory_cycles),
            "{}",
            l.name
        );
    }
}

#[test]
fn seda_matches_baseline_request_count_plus_layer_macs() {
    let npu = NpuConfig::edge();
    let model = zoo::lenet();
    let base = run_model(&npu, &model, &mut Unprotected::new());
    let seda = run_model(
        &npu,
        &model,
        &mut SedaScheme::new(LayerMacStore::OffChip, PROTECTED_BYTES),
    );
    let layer_lines = 2 * model.layers().len() as u64;
    assert_eq!(
        seda.dram.accesses(),
        base.dram.accesses() + layer_lines,
        "SeDA must add exactly one layer-MAC line read + write per layer"
    );
}

#[test]
fn granularity_monotonically_reduces_mac_metadata() {
    let npu = NpuConfig::edge();
    let model = zoo::alexnet();
    let mut last = u64::MAX;
    for g in [64u64, 128, 256, 512] {
        let mut s = BlockMacScheme::new(BlockMacKind::Mgx, g, PROTECTED_BYTES);
        let r = run_model(&npu, &model, &mut s);
        let mac = r.traffic.mac_read + r.traffic.mac_write;
        assert!(
            mac < last,
            "MAC bytes must shrink with granularity at g={g}"
        );
        last = mac;
    }
}

#[test]
fn results_are_deterministic() {
    let npu = NpuConfig::edge();
    let model = zoo::ncf();
    let r1 = run_model(
        &npu,
        &model,
        &mut BlockMacScheme::new(BlockMacKind::Sgx, 64, PROTECTED_BYTES),
    );
    let r2 = run_model(
        &npu,
        &model,
        &mut BlockMacScheme::new(BlockMacKind::Sgx, 64, PROTECTED_BYTES),
    );
    assert_eq!(r1.total_cycles, r2.total_cycles);
    assert_eq!(r1.traffic, r2.traffic);
    assert_eq!(r1.dram, r2.dram);
}

#[test]
fn sixteen_gb_protected_region_layout_is_respected() {
    // Metadata addresses must land above the data region, below 2x the
    // protected size (the SeDA layer-MAC base).
    let npu = NpuConfig::edge();
    let model = zoo::lenet();
    let mut sgx = BlockMacScheme::new(BlockMacKind::Sgx, 64, PROTECTED_BYTES);
    let sim = seda::scalesim::simulate_model(&npu, &model);
    let mut seen_meta = false;
    for layer in &sim.layers {
        for burst in &layer.bursts {
            sgx.transform(burst, &mut |req| {
                if req.addr >= PROTECTED_BYTES {
                    seen_meta = true;
                    assert!(req.addr < 2 * PROTECTED_BYTES, "metadata beyond layout");
                }
            });
        }
    }
    assert!(seen_meta, "SGX must touch metadata addresses");
}
