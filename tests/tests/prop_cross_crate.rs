//! Property-based integration tests across crates: arbitrary burst
//! streams through every protection scheme, and arbitrary tensors through
//! the crypto lifecycle.

use proptest::prelude::*;
use seda::protect::{
    BlockMacKind, BlockMacScheme, LayerMacStore, ProtectionScheme, SedaScheme, Unprotected,
    PROTECTED_BYTES,
};
use seda::scalesim::{Burst, TensorKind};
use seda_crypto::ctr::CounterSeed;
use seda_crypto::otp::{BandwidthAwareOtp, OtpStrategy, TraditionalOtp};
use seda_dram::Request;

fn arb_burst() -> impl Strategy<Value = Burst> {
    (
        0u64..(1 << 24),
        1u64..20_000,
        any::<bool>(),
        0u32..4,
        prop_oneof![
            Just(TensorKind::Ifmap),
            Just(TensorKind::Filter),
            Just(TensorKind::Ofmap)
        ],
    )
        .prop_map(|(addr, bytes, is_write, layer, tensor)| {
            // Inference writes only ofmaps.
            let tensor = if is_write { TensorKind::Ofmap } else { tensor };
            Burst {
                addr,
                bytes,
                is_write,
                tensor,
                layer,
            }
        })
}

fn run_scheme(
    scheme: &mut dyn ProtectionScheme,
    bursts: &[Burst],
) -> (Vec<Request>, seda::protect::TrafficBreakdown) {
    let mut reqs = Vec::new();
    for b in bursts {
        scheme.transform(b, &mut |r| reqs.push(r));
    }
    scheme.finish(&mut |r| reqs.push(r));
    (reqs, scheme.breakdown())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tally_matches_emitted_requests(bursts in prop::collection::vec(arb_burst(), 1..40)) {
        // Every scheme's byte tally must equal 64 B times its request count.
        let mut schemes: Vec<Box<dyn ProtectionScheme>> = vec![
            Box::new(Unprotected::new()),
            Box::new(BlockMacScheme::new(BlockMacKind::Sgx, 64, PROTECTED_BYTES)),
            Box::new(BlockMacScheme::new(BlockMacKind::Sgx, 512, PROTECTED_BYTES)),
            Box::new(BlockMacScheme::new(BlockMacKind::Mgx, 64, PROTECTED_BYTES)),
            Box::new(BlockMacScheme::new(BlockMacKind::Mgx, 512, PROTECTED_BYTES)),
            Box::new(SedaScheme::new(LayerMacStore::OffChip, PROTECTED_BYTES)),
        ];
        for s in schemes.iter_mut() {
            let name = s.name().to_owned();
            let (reqs, tally) = run_scheme(s.as_mut(), &bursts);
            prop_assert_eq!(reqs.len() as u64 * 64, tally.total(), "{}", name);
            // All requests land on the 64 B grid.
            prop_assert!(reqs.iter().all(|r| r.addr % 64 == 0), "{}", name);
        }
    }

    #[test]
    fn demand_is_scheme_invariant(bursts in prop::collection::vec(arb_burst(), 1..40)) {
        let (_, base) = run_scheme(&mut Unprotected::new(), &bursts);
        for mut s in [
            BlockMacScheme::new(BlockMacKind::Sgx, 64, PROTECTED_BYTES),
            BlockMacScheme::new(BlockMacKind::Mgx, 512, PROTECTED_BYTES),
        ] {
            let (_, t) = run_scheme(&mut s, &bursts);
            prop_assert_eq!(t.demand(), base.demand());
        }
    }

    #[test]
    fn protection_never_reduces_traffic(bursts in prop::collection::vec(arb_burst(), 1..40)) {
        let (_, base) = run_scheme(&mut Unprotected::new(), &bursts);
        for mut s in seda::protect::paper_lineup() {
            let (_, t) = run_scheme(s.as_mut(), &bursts);
            prop_assert!(t.total() >= base.total(), "{}", s.name());
        }
    }

    #[test]
    fn seda_metadata_is_bounded_by_layer_count(bursts in prop::collection::vec(arb_burst(), 1..60)) {
        let mut seda = SedaScheme::new(LayerMacStore::OffChip, PROTECTED_BYTES);
        let (_, t) = run_scheme(&mut seda, &bursts);
        // At most one read+write line per layer *transition*, and layers
        // may be revisited in arbitrary burst orders.
        let transitions = 1 + bursts.windows(2).filter(|w| w[0].layer != w[1].layer).count() as u64;
        prop_assert!(t.metadata() <= transitions * 2 * 64);
        prop_assert_eq!(t.overfetch_read, 0u64);
    }

    #[test]
    fn crypto_lifecycle_roundtrips(data in prop::collection::vec(any::<u8>(), 1..2048),
                                   pa in 0u64..(1 << 40), vn in 0u64..(1 << 30)) {
        for strategy in [true, false] {
            let mut buf = data.clone();
            let seed = CounterSeed::new(pa, vn);
            if strategy {
                let s = BandwidthAwareOtp::new([0x61; 16]);
                s.apply(seed, &mut buf);
                s.apply(seed, &mut buf);
            } else {
                let s = TraditionalOtp::new([0x61; 16]);
                s.apply(seed, &mut buf);
                s.apply(seed, &mut buf);
            }
            prop_assert_eq!(&buf, &data);
        }
    }
}
