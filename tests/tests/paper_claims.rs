//! Tests pinning the paper's headline claims on reduced workload sets
//! (the full 13-workload sweep lives in the fig5/fig6 binaries and
//! EXPERIMENTS.md; these tests keep the claims from regressing).

use seda::experiment::evaluate;
use seda::hw::{baes_cost, taes_cost};
use seda::scalesim::NpuConfig;
use seda_models::zoo;

#[test]
fn seda_overhead_is_near_zero_on_real_workloads() {
    // Claim (abstract): SeDA has near-zero traffic overhead and <1%
    // performance impact. LeNet is excluded: at ~20k total cycles it is
    // degenerately small and a single metadata line is visible.
    let models = vec![zoo::alexnet(), zoo::ncf()];
    for npu in [NpuConfig::server(), NpuConfig::edge()] {
        let eval = evaluate(&npu, &models);
        for w in &eval.workloads {
            let seda = w
                .outcomes
                .iter()
                .find(|o| o.scheme == "SeDA")
                .expect("SeDA present");
            assert!(
                seda.traffic_norm < 1.01,
                "{}/{}: SeDA traffic {}",
                npu.name,
                w.workload,
                seda.traffic_norm
            );
            assert!(
                seda.perf_norm < 1.02,
                "{}/{}: SeDA perf {}",
                npu.name,
                w.workload,
                seda.perf_norm
            );
        }
    }
}

#[test]
fn sgx64_overhead_is_around_thirty_percent() {
    // Claim (Fig. 5): SGX-64B adds ~30% (server) / ~28% (edge) traffic.
    let models = vec![zoo::alexnet(), zoo::ncf()];
    for npu in [NpuConfig::server(), NpuConfig::edge()] {
        let eval = evaluate(&npu, &models);
        for (scheme, t) in eval.mean_traffic() {
            if scheme == "SGX-64B" {
                assert!(
                    (1.24..1.40).contains(&t),
                    "{}: SGX-64B traffic {t}",
                    npu.name
                );
            }
        }
    }
}

#[test]
fn mgx64_overhead_is_around_one_eighth() {
    // Claim (Fig. 5): MGX-64B ≈ +12.5% — the 8 B-per-64 B MAC ratio.
    let models = vec![zoo::alexnet()];
    let eval = evaluate(&NpuConfig::server(), &models);
    for (scheme, t) in eval.mean_traffic() {
        if scheme == "MGX-64B" {
            assert!((1.10..1.16).contains(&t), "MGX-64B traffic {t}");
        }
    }
}

#[test]
fn scheme_ordering_matches_figure_5() {
    let models = vec![zoo::alexnet(), zoo::ncf()];
    for npu in [NpuConfig::server(), NpuConfig::edge()] {
        let eval = evaluate(&npu, &models);
        let means: std::collections::HashMap<String, f64> =
            eval.mean_traffic().into_iter().collect();
        assert!(means["SGX-64B"] > means["SGX-512B"], "{}", npu.name);
        assert!(means["SGX-512B"] > means["MGX-512B"], "{}", npu.name);
        assert!(means["MGX-64B"] > means["MGX-512B"], "{}", npu.name);
        assert!(means["MGX-512B"] > means["SeDA"], "{}", npu.name);
    }
}

#[test]
fn performance_overheads_follow_traffic() {
    // Claim (Fig. 6): the performance ranking mirrors the traffic ranking,
    // with SeDA nearly indistinguishable from the baseline.
    let models = vec![zoo::alexnet(), zoo::ncf()];
    let eval = evaluate(&NpuConfig::edge(), &models);
    let means: std::collections::HashMap<String, f64> = eval.mean_perf().into_iter().collect();
    assert!(means["SGX-64B"] > means["MGX-64B"]);
    assert!(means["MGX-64B"] > means["MGX-512B"]);
    assert!(means["MGX-512B"] > means["SeDA"]);
    assert!(means["SeDA"] < 1.02);
}

#[test]
fn fig4_scaling_claims() {
    // Claim (Fig. 4): B-AES shows "minimal increases in area and power"
    // while T-AES scales linearly with bandwidth.
    let t16 = taes_cost(16);
    let t1 = taes_cost(1);
    assert!((t16.area_mm2 / t1.area_mm2 - 16.0).abs() < 1e-9);
    let b16 = baes_cost(16);
    let b1 = baes_cost(1);
    assert!(
        b16.area_mm2 / b1.area_mm2 < 3.0,
        "B-AES area grew {}x from 1x to 16x bandwidth",
        b16.area_mm2 / b1.area_mm2
    );
    assert!(t16.power_mw / b16.power_mw > 5.0);
}

#[test]
fn every_paper_workload_is_available() {
    // §IV-A lists 13 benchmarks; regressions here would silently shrink
    // the figures.
    assert_eq!(zoo::all_models().len(), 13);
}
