//! End-to-end security tests crossing the crypto, protection, and attack
//! layers: the full write-path/read-path lifecycle of protected tensors,
//! plus both paper attacks mounted against the real cipher and MACs.

use seda::attacks::repa::{mount_repa, MacBinding, ProtectedLayer};
use seda::attacks::seca::{mount_seca, sparse_block};
use seda_crypto::ctr::CounterSeed;
use seda_crypto::mac::{BlockPosition, PositionBoundMac, XorAccumulator};
use seda_crypto::otp::{BandwidthAwareOtp, OtpStrategy, SharedOtp, TraditionalOtp};

#[test]
fn full_tensor_lifecycle_roundtrips() {
    // Encrypt a multi-block tensor, build a layer MAC, verify, decrypt.
    let enc = BandwidthAwareOtp::new([3u8; 16]);
    let mac = PositionBoundMac::new([4u8; 16]);
    let tensor: Vec<u8> = (0..4096).map(|i| (i % 253) as u8).collect();
    let base_pa = 0x10_0000u64;

    let mut cipher = tensor.clone();
    let mut layer_mac = XorAccumulator::new();
    for (i, chunk) in cipher.chunks_mut(64).enumerate() {
        let pa = base_pa + (i * 64) as u64;
        enc.apply(CounterSeed::new(pa, 0), chunk);
        layer_mac.add(mac.tag(chunk, pa, 0, BlockPosition::new(0, 0, i as u32)));
    }
    assert_ne!(cipher, tensor);

    // Read path.
    let mut check = XorAccumulator::new();
    let mut plain = cipher.clone();
    for (i, chunk) in plain.chunks_mut(64).enumerate() {
        let pa = base_pa + (i * 64) as u64;
        check.add(mac.tag(chunk, pa, 0, BlockPosition::new(0, 0, i as u32)));
        enc.apply(CounterSeed::new(pa, 0), chunk);
    }
    assert!(check.verify(layer_mac.value()));
    assert_eq!(plain, tensor);
}

#[test]
fn version_bump_invalidates_stale_ciphertext() {
    // Replay protection: data encrypted under VN=0 must not decrypt under
    // VN=1 (the on-chip VN after a legitimate overwrite).
    let enc = BandwidthAwareOtp::new([3u8; 16]);
    let msg = *b"fresh activations from layer 12, version zero...";
    let mut stale = msg.to_vec();
    enc.apply(CounterSeed::new(0x9000, 0), &mut stale);
    // Verifier decrypts with the current VN = 1.
    enc.apply(CounterSeed::new(0x9000, 1), &mut stale);
    assert_ne!(
        &stale[..],
        &msg[..],
        "replayed data must decrypt to garbage"
    );
}

#[test]
fn seca_outcome_matrix() {
    // The attack succeeds iff pads are shared, independent of sparsity.
    let seed = CounterSeed::new(0x7700, 9);
    for sparsity in [0.2, 0.5, 0.8] {
        let pt = sparse_block(64, sparsity, 1234);
        assert!(
            mount_seca(&SharedOtp::new([9u8; 16]), seed, &pt, [0u8; 16]).success,
            "shared OTP must break at sparsity {sparsity}"
        );
        assert!(
            !mount_seca(&BandwidthAwareOtp::new([9u8; 16]), seed, &pt, [0u8; 16]).success,
            "B-AES must hold at sparsity {sparsity}"
        );
        assert!(
            !mount_seca(&TraditionalOtp::new([9u8; 16]), seed, &pt, [0u8; 16]).success,
            "T-AES must hold at sparsity {sparsity}"
        );
    }
}

#[test]
fn baes_and_taes_agree_on_security_but_not_cost() {
    // Equal security outcome, an order of magnitude apart in engine work.
    let baes = BandwidthAwareOtp::new([5u8; 16]);
    let taes = TraditionalOtp::new([5u8; 16]);
    let segments = 32; // 512 B block
    assert!(baes.aes_evaluations(segments) * 8 <= taes.aes_evaluations(segments));
}

#[test]
fn repa_matrix_over_block_sizes() {
    for block_bytes in [64usize, 128, 256] {
        let pt: Vec<u8> = (0..block_bytes * 8).map(|i| (i % 251) as u8).collect();
        let mut weak =
            ProtectedLayer::seal(&pt, block_bytes, 0x5000, 2, MacBinding::CiphertextOnly);
        assert!(
            mount_repa(&mut weak, &pt).success,
            "RePA must break positionless MACs at {block_bytes}B blocks"
        );
        let mut strong =
            ProtectedLayer::seal(&pt, block_bytes, 0x5000, 2, MacBinding::PositionBound);
        assert!(
            !mount_repa(&mut strong, &pt).success,
            "position binding must hold at {block_bytes}B blocks"
        );
    }
}

#[test]
fn distinct_layers_produce_distinct_layer_macs() {
    // The same data sealed as layer 1 vs layer 2 must not share a MAC —
    // otherwise whole layers could be transplanted.
    let pt: Vec<u8> = vec![0x77; 512];
    let a = ProtectedLayer::seal(&pt, 64, 0x1000, 1, MacBinding::PositionBound);
    let b = ProtectedLayer::seal(&pt, 64, 0x1000, 2, MacBinding::PositionBound);
    assert_ne!(a.layer_mac, b.layer_mac);
}
