//! Consistency checks between the functional (value-level) and timing
//! (trace-level) views of the same secure accelerator.

use seda::functional::{run_protected, run_reference, SecureMemory};
use seda::sealing::{seal_model, synthetic_weights, verify_model, SealingKeys};
use seda_models::zoo;
use seda_scalesim::{simulate_model, AddressMap, NpuConfig, TensorKind};

#[test]
fn timing_trace_addresses_fit_the_functional_memory() {
    // Every address the timing simulator's bursts touch must lie inside
    // the address map the functional memory is sized from.
    let model = zoo::lenet();
    let map = AddressMap::new(&model);
    for cfg in [NpuConfig::server(), NpuConfig::edge()] {
        let sim = simulate_model(&cfg, &model);
        for layer in &sim.layers {
            for b in &layer.bursts {
                assert!(
                    b.end() <= map.total_bytes(),
                    "burst {:?} escapes the protected region",
                    b
                );
            }
        }
    }
}

#[test]
fn functional_weights_match_sealed_weights() {
    // The functional simulator and the sealing flow must agree on the
    // synthetic weights for each layer (same generator, same sizes).
    let model = zoo::lenet();
    let keys = SealingKeys::new([0x2b; 16], [0x7e; 16]);
    let sealed = seal_model(&keys, &model);
    for (idx, layer) in model.layers().iter().enumerate() {
        let expected = synthetic_weights(idx as u32, layer.filter_bytes());
        let unsealed = seda::sealing::unseal_layer(&keys, &sealed.layers[idx]);
        assert_eq!(unsealed, expected, "layer {idx} weights diverge");
    }
    assert!(verify_model(&keys, &sealed).is_ok());
}

#[test]
fn functional_inference_is_deterministic() {
    let model = zoo::lenet();
    let input: Vec<u8> = (0..32 * 32).map(|i| (i % 31) as u8).collect();
    let a = run_protected(&model, &input, |_| {}).expect("verifies");
    let b = run_protected(&model, &input, |_| {}).expect("verifies");
    assert_eq!(a, b);
    assert_eq!(a, run_reference(&model, &input));
}

#[test]
fn every_weight_region_is_tamper_sensitive() {
    // Flip a bit in each layer's weights in turn; each run must abort
    // with the violation localized to that layer.
    let model = zoo::lenet();
    let map = AddressMap::new(&model);
    let input: Vec<u8> = vec![3; 32 * 32];
    for (idx, _) in model.layers().iter().enumerate() {
        let addr = map.weights(idx) as usize;
        let err = run_protected(&model, &input, |mem| {
            mem.raw_mut()[addr] ^= 0x40;
        })
        .expect_err("tamper must be detected");
        let v = err.integrity().expect("tamper surfaces as Integrity");
        assert_eq!(v.layer, idx as u32, "violation localized to layer {idx}");
        assert_eq!(v.tensor, TensorKind::Filter);
    }
}

#[test]
fn secure_memory_rejects_wrong_layer_binding() {
    // Reading a region back with the wrong layer id (as a confused deputy
    // would) must fail even though address, VN, and data are untouched.
    let mut mem = SecureMemory::new(4096, [1; 16], [2; 16]);
    let data = vec![0x5a; 512];
    let mac = mem
        .write_region(0, 3, 7, TensorKind::Ofmap, &data)
        .expect("region fits");
    assert!(mem
        .read_region(0, 3, 7, TensorKind::Ofmap, 512, mac)
        .is_ok());
    assert!(
        mem.read_region(0, 3, 8, TensorKind::Ofmap, 512, mac)
            .is_err(),
        "layer id is bound into the MACs"
    );
    assert!(
        mem.read_region(0, 3, 7, TensorKind::Ifmap, 512, mac)
            .is_err(),
        "tensor kind is bound into the MACs"
    );
}
