//! Serving-scenario golden suite.
//!
//! The three serving scenarios in the zoo get pinned `seda-serve/v1`
//! snapshot fixtures, compared **byte-for-byte**: the serving simulator
//! is a pure function of `(scenario, seed)` — no wall clock, no OS
//! randomness, no thread-count sensitivity — so any diff means the
//! kernel, the arrival processes, or the grounding pipeline changed.
//! Bless intentional changes with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p seda-integration-tests --test serve_golden
//! ```

use seda::scenario;
use seda_integration_tests::golden::check_golden;
use seda_serve::serve_scenario;

fn snapshot_of(name: &str) -> String {
    let s = scenario::load(name).expect("serving scenario loads");
    let run = serve_scenario(&s).expect("serving scenario executes");
    assert_eq!(
        run.report.completed, run.report.requests,
        "{name} must drain every request"
    );
    assert!(
        run.failures(&s).is_empty(),
        "{name} must satisfy its own expect block"
    );
    run.report.snapshot_json()
}

#[test]
fn serve_mix_matches_the_pinned_snapshot() {
    check_golden("serve_mix.golden.json", &snapshot_of("serve_mix"));
}

#[test]
fn serve_closed_loop_matches_the_pinned_snapshot() {
    check_golden(
        "serve_closed_loop.golden.json",
        &snapshot_of("serve_closed_loop"),
    );
}

#[test]
fn serve_swap_matches_the_pinned_snapshot() {
    // The hot-swap scenario: the swapped tenant's replacement image must
    // have streamed in (an applied swap under a fresh key id) and the
    // whole report — cutover timing included — must be byte-stable.
    let snapshot = snapshot_of("serve_swap");
    assert!(
        snapshot.contains("\"swaps\""),
        "serve_swap must report its swap section:\n{snapshot}"
    );
    assert!(
        snapshot.contains("\"applied\": true"),
        "the scheduled swap must land before drain:\n{snapshot}"
    );
    check_golden("serve_swap.golden.json", &snapshot);
}

#[test]
fn serving_snapshots_are_reproducible_within_a_process() {
    // Re-grounding and re-simulating in the same process (shared trace
    // cache, warm telemetry) must not perturb a single byte.
    assert_eq!(snapshot_of("serve_mix"), snapshot_of("serve_mix"));
    assert_eq!(snapshot_of("serve_swap"), snapshot_of("serve_swap"));
}

#[test]
fn kernel_outcome_is_independent_of_host_parallelism() {
    // The kernel never spawns threads, but the surrounding harness does
    // (cargo test runs suites concurrently); simulating the same spec
    // from racing threads must still be bit-identical — including the
    // swap phase, whose cutover ordering must not depend on the host.
    for name in ["serve_mix", "serve_swap"] {
        let s = scenario::load(name).expect("serving scenario loads");
        let setup = seda_serve::build(&s).expect("grounds");
        let baseline = seda_serve::simulate(&setup.spec);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| seda_serve::simulate(&setup.spec)))
                .collect();
            for h in handles {
                assert_eq!(h.join().expect("no panic"), baseline);
            }
        });
    }
}
