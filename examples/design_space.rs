//! Design-space exploration: for a chosen workload, sweep the protection
//! granularity, run the optBlk search, and size the encryption hardware —
//! the workflow an accelerator architect would run before taping out a
//! secure NPU.
//!
//! Run with: `cargo run --release -p seda-examples --example design_space`
//! Optionally pass a workload name (default: mob).

use seda::hw::{baes_cost, taes_cost};
use seda::models::zoo;
use seda::optblk::search_model;
use seda::pipeline::run_model;
use seda::protect::{BlockMacKind, BlockMacScheme, Unprotected, PROTECTED_BYTES};
use seda::scalesim::NpuConfig;
use std::collections::BTreeMap;

fn main() {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "mob".to_owned());
    let model = zoo::by_name(&workload).unwrap_or_else(zoo::mobilenet);
    let npu = NpuConfig::edge();

    println!(
        "design-space exploration: {} on the edge NPU\n",
        model.name()
    );

    // 1. Fixed-granularity sweep: where does one-size-fits-all land?
    println!("-- fixed protection granularity (MGX-style) --");
    let base = run_model(&npu, &model, &mut Unprotected::new());
    let mut best = (0u64, f64::INFINITY);
    for g in [64u64, 128, 256, 512, 1024, 2048, 4096] {
        let mut scheme = BlockMacScheme::new(BlockMacKind::Mgx, g, PROTECTED_BYTES);
        let r = run_model(&npu, &model, &mut scheme);
        let overhead = r.traffic.total() as f64 / base.traffic.total() as f64 - 1.0;
        if overhead < best.1 {
            best = (g, overhead);
        }
        println!(
            "  g = {g:>5} B: traffic overhead {:>6.2}%",
            overhead * 100.0
        );
    }
    println!(
        "  best fixed granularity: {} B ({:.2}%)",
        best.0,
        best.1 * 100.0
    );

    // 2. Per-layer optBlk: what does the search pick instead?
    println!("\n-- per-layer optBlk search (SecureLoop-style) --");
    let choices = search_model(&npu, &model);
    let mut hist: BTreeMap<u64, usize> = BTreeMap::new();
    for c in &choices {
        *hist.entry(c.granularity).or_insert(0) += 1;
    }
    for (g, n) in &hist {
        println!("  {g:>5} B chosen by {n} layer(s)");
    }

    // 3. Encryption hardware sizing for this NPU's bandwidth.
    // A round-based AES-128 engine produces one 16 B pad per 11 cycles.
    let engine_bw = 16.0 * npu.clock_hz / 11.0;
    let multiple = (npu.dram_bandwidth / engine_bw).ceil().max(1.0) as u32;
    let t = taes_cost(multiple.max(1));
    let b = baes_cost(multiple.max(1));
    println!(
        "\n-- encryption hardware for {:.0} GB/s --",
        npu.dram_bandwidth / 1e9
    );
    println!("  required bandwidth multiple: {multiple}x a single engine");
    println!(
        "  T-AES: {:.4} mm^2, {:.2} mW   B-AES: {:.4} mm^2, {:.2} mW  (saves {:.0}% area)",
        t.area_mm2,
        t.power_mw,
        b.area_mm2,
        b.power_mw,
        (1.0 - b.area_mm2 / t.area_mm2) * 100.0
    );
}
