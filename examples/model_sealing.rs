//! Seal a complete model with SeDA's multi-level MAC hierarchy: per-optBlk
//! MACs fold into layer MACs, layer MACs fold into the single on-chip
//! model MAC, and tampering anywhere in the weights is both detected and
//! localized to the offending layer.
//!
//! Run with: `cargo run --release -p seda-examples --example model_sealing`
//! Optionally pass a workload name (default: rest).

use seda::models::zoo;
use seda::sealing::{seal_model, unseal_layer, verify_model, SealingKeys};

fn main() {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "rest".to_owned());
    let model = zoo::by_name(&workload).unwrap_or_else(zoo::resnet18);
    let keys = SealingKeys::new([0x2b; 16], [0x7e; 16]);

    println!(
        "sealing {} ({} layers, {:.1} MB of weights)...",
        model.name(),
        model.layers().len(),
        model.weight_bytes() as f64 / 1e6
    );
    let mut sealed = seal_model(&keys, &model);
    println!(
        "model MAC (on-chip, 8 B for the whole model): {}",
        sealed.model_mac
    );

    // Honest read-back: verify then decrypt one layer.
    assert!(verify_model(&keys, &sealed).is_ok());
    println!("verification: PASS");
    let plain = unseal_layer(&keys, &sealed.layers[0]);
    println!(
        "unsealed layer {:?}: {} bytes, {:.1}% zeros (pruned-network sparsity)",
        sealed.layers[0].name,
        plain.len(),
        plain.iter().filter(|&&b| b == 0).count() as f64 / plain.len() as f64 * 100.0
    );

    // Attack: flip one bit somewhere in the middle of the model.
    let victim = sealed.layers.len() / 2;
    sealed.layers[victim].ciphertext[33] ^= 0x04;
    match verify_model(&keys, &sealed) {
        Ok(()) => println!("tampering went UNDETECTED (bug!)"),
        Err(bad) => println!(
            "single flipped bit detected; localized to layer(s): {}",
            bad.join(", ")
        ),
    }
}
