//! Functional end-to-end demo: run LeNet with every tensor encrypted in
//! untrusted memory, show the result matches unprotected execution
//! bit-for-bit, then flip one ciphertext bit and watch verification stop
//! the inference.
//!
//! Run with: `cargo run --release -p seda-examples --example encrypted_inference`

use seda::functional::{run_protected, run_reference};
use seda::models::zoo;
use seda::scalesim::AddressMap;

fn main() {
    let model = zoo::lenet();
    let input: Vec<u8> = (0..32 * 32).map(|i| (i % 23) as u8).collect();

    println!("running {} unprotected (reference)...", model.name());
    let reference = run_reference(&model, &input);
    println!("logits: {:?}", as_i8(&reference));

    println!(
        "\nrunning {} with all tensors encrypted + verified...",
        model.name()
    );
    let protected = run_protected(&model, &input, |_| {}).expect("honest run verifies");
    println!("logits: {:?}", as_i8(&protected));
    assert_eq!(protected, reference);
    println!("=> bit-identical to the reference: protection is transparent");

    println!("\nflipping one ciphertext bit in layer 1's weights off-chip...");
    let map = AddressMap::new(&model);
    let addr = map.weights(1) as usize;
    match run_protected(&model, &input, |mem| {
        mem.raw_mut()[addr + 100] ^= 0x20;
    }) {
        Ok(_) => println!("UNDETECTED (bug!)"),
        Err(violation) => println!("=> inference aborted: {violation}"),
    }
}

fn as_i8(bytes: &[u8]) -> Vec<i8> {
    bytes.iter().map(|&b| b as i8).collect()
}
