//! Example support crate (examples live alongside this package).
