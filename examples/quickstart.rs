//! Quickstart: protect a DNN tensor block end-to-end with SeDA's
//! primitives — bandwidth-aware encryption, position-bound block MACs,
//! and a layer MAC — then run a tamper check.
//!
//! Run with: `cargo run --release -p seda-examples --example quickstart`

use seda::crypto::ctr::CounterSeed;
use seda::crypto::mac::{BlockPosition, PositionBoundMac, XorAccumulator};
use seda::crypto::otp::{BandwidthAwareOtp, OtpStrategy};

fn main() {
    // Keys would come from the accelerator's secure key store.
    let enc = BandwidthAwareOtp::new([0x2b; 16]);
    let mac = PositionBoundMac::new([0x7e; 16]);

    // A 256-byte slice of layer-3 weights at physical address 0x4_0000.
    let pa = 0x4_0000u64;
    let vn = 0u64; // first write
    let mut block: Vec<u8> = (0..256).map(|i| (i % 17) as u8).collect();
    let original = block.clone();

    // --- Write path: encrypt with per-segment pads, MAC, fold. ---
    let seed = CounterSeed::new(pa, vn);
    enc.apply(seed, &mut block);
    println!(
        "encrypted 256 B with {} AES evaluation(s) (T-AES would need {})",
        enc.aes_evaluations(16),
        16
    );

    let mut layer_mac = XorAccumulator::new();
    for (i, chunk) in block.chunks(64).enumerate() {
        let pos = BlockPosition::new(3, 1, i as u32);
        layer_mac.add(mac.tag(chunk, pa + (i * 64) as u64, vn, pos));
    }
    let sealed_layer_mac = layer_mac.value();
    println!("layer MAC (on-chip): {sealed_layer_mac}");

    // --- Read path: verify, then decrypt. ---
    let mut check = XorAccumulator::new();
    for (i, chunk) in block.chunks(64).enumerate() {
        let pos = BlockPosition::new(3, 1, i as u32);
        check.add(mac.tag(chunk, pa + (i * 64) as u64, vn, pos));
    }
    assert!(check.verify(sealed_layer_mac));
    println!("integrity check: PASS");

    enc.apply(seed, &mut block);
    assert_eq!(block, original);
    println!("decrypted block matches original plaintext");

    // --- Tamper: flip one ciphertext bit and re-verify. ---
    enc.apply(seed, &mut block); // re-encrypt
    block[100] ^= 0x01;
    let mut tampered = XorAccumulator::new();
    for (i, chunk) in block.chunks(64).enumerate() {
        let pos = BlockPosition::new(3, 1, i as u32);
        tampered.add(mac.tag(chunk, pa + (i * 64) as u64, vn, pos));
    }
    assert!(!tampered.verify(sealed_layer_mac));
    println!("tampered bit detected by the layer MAC: PASS");
}
