//! Attack & defense walkthrough: mounts the paper's two attacks — SECA
//! (Algorithm 1) against shared-OTP encryption and RePA (Algorithm 2)
//! against XOR-folded layer MACs — and shows SeDA's defenses stopping both.
//!
//! Run with: `cargo run --release -p seda-examples --example attack_demo`

use seda::attacks::repa::{mount_repa, MacBinding, ProtectedLayer};
use seda::attacks::seca::{mount_seca, sparse_block};
use seda::crypto::ctr::CounterSeed;
use seda::crypto::otp::{BandwidthAwareOtp, SharedOtp};

fn main() {
    println!("=== Attack 1: SECA (single-element collision, Algorithm 1) ===\n");
    let key = [0x42; 16];
    let seed = CounterSeed::new(0x10_0000, 5);
    // 512 B of 70%-sparse weights — typical for pruned DNNs.
    let weights = sparse_block(32, 0.7, 99);

    let naive = mount_seca(&SharedOtp::new(key), seed, &weights, [0u8; 16]);
    println!(
        "shared OTP:  attacker recovers {:.1}% of the block  -> {}",
        naive.accuracy * 100.0,
        if naive.success {
            "MODEL STOLEN"
        } else {
            "safe"
        }
    );

    let defended = mount_seca(&BandwidthAwareOtp::new(key), seed, &weights, [0u8; 16]);
    println!(
        "B-AES:       attacker recovers {:.1}% of the block  -> {}",
        defended.accuracy * 100.0,
        if defended.success {
            "MODEL STOLEN"
        } else {
            "safe"
        }
    );

    println!("\n=== Attack 2: RePA (re-permutation, Algorithm 2) ===\n");
    let activations: Vec<u8> = (0..32 * 64).map(|i| (i as u8).wrapping_mul(13)).collect();

    let mut weak = ProtectedLayer::seal(&activations, 64, 0x20_0000, 9, MacBinding::CiphertextOnly);
    let attack = mount_repa(&mut weak, &activations);
    println!(
        "ciphertext-only MACs: verification {} after shuffle, {:.1}% of data intact -> {}",
        if attack.verification_passed {
            "PASSES"
        } else {
            "fails"
        },
        attack.decryption_accuracy * 100.0,
        if attack.success {
            "SILENT CORRUPTION"
        } else {
            "safe"
        }
    );

    let mut strong =
        ProtectedLayer::seal(&activations, 64, 0x20_0000, 9, MacBinding::PositionBound);
    let defended = mount_repa(&mut strong, &activations);
    println!(
        "position-bound MACs:  verification {} after shuffle -> {}",
        if defended.verification_passed {
            "passes"
        } else {
            "FAILS (tamper detected)"
        },
        if defended.success { "broken" } else { "safe" }
    );

    println!("\nBoth defenses are structural: per-segment pads from the AES key");
    println!("schedule (B-AES) and position fields inside each optBlk MAC.");
}
