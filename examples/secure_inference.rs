//! Run a full secure inference: ResNet-18 on the edge NPU under every
//! protection scheme, reporting traffic and runtime side by side — a
//! single-workload slice of the paper's Figs. 5 and 6.
//!
//! Run with: `cargo run --release -p seda-examples --example secure_inference`
//! Pass a workload name (let/alex/mob/rest/goo/dlrm/algo/ds2/fast/ncf/
//! sent/trf/yolo) and `server`/`edge` to change the scenario.

use seda::models::zoo;
use seda::pipeline::run_model;
use seda::protect::{
    BlockMacKind, BlockMacScheme, LayerMacStore, ProtectionScheme, SedaScheme, Unprotected,
    PROTECTED_BYTES,
};
use seda::scalesim::NpuConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = args.get(1).map(String::as_str).unwrap_or("rest");
    let npu = match args.get(2).map(String::as_str) {
        Some("server") => NpuConfig::server(),
        _ => NpuConfig::edge(),
    };
    let model = zoo::by_name(workload).unwrap_or_else(|| {
        eprintln!("unknown workload {workload:?}, using rest");
        zoo::resnet18()
    });

    println!(
        "secure inference: {} on the {} NPU ({}x{} PEs, {} KB SRAM)\n",
        model.name(),
        npu.name,
        npu.rows,
        npu.cols,
        npu.sram_bytes >> 10
    );

    let mut schemes: Vec<Box<dyn ProtectionScheme>> = vec![
        Box::new(Unprotected::new()),
        Box::new(BlockMacScheme::new(BlockMacKind::Sgx, 64, PROTECTED_BYTES)),
        Box::new(BlockMacScheme::new(BlockMacKind::Sgx, 512, PROTECTED_BYTES)),
        Box::new(BlockMacScheme::new(BlockMacKind::Mgx, 64, PROTECTED_BYTES)),
        Box::new(BlockMacScheme::new(BlockMacKind::Mgx, 512, PROTECTED_BYTES)),
        Box::new(SedaScheme::new(LayerMacStore::OffChip, PROTECTED_BYTES)),
    ];

    println!(
        "{:<10} {:>12} {:>10} {:>12} {:>10} {:>10}",
        "scheme", "bytes", "traffic", "cycles", "slowdown", "row hits"
    );
    let mut base: Option<(u64, u64)> = None;
    for scheme in schemes.iter_mut() {
        let r = run_model(&npu, &model, scheme.as_mut());
        let (t0, c0) = *base.get_or_insert((r.traffic.total(), r.total_cycles));
        println!(
            "{:<10} {:>12} {:>9.4}x {:>12} {:>9.4}x {:>9.1}%",
            r.scheme,
            r.traffic.total(),
            r.traffic.total() as f64 / t0 as f64,
            r.total_cycles,
            r.total_cycles as f64 / c0 as f64,
            r.dram.hit_rate() * 100.0
        );
    }
    println!();
    println!("SeDA tracks the unprotected baseline to within a fraction of a");
    println!("percent while SGX/MGX pay for off-chip MAC/VN/tree metadata.");
}
