#!/usr/bin/env bash
# Smoke-runs every example and every bench binary once, with arguments
# that keep each run short. Any non-zero exit fails the script and dumps
# that run's output. CI calls this after the release build so the
# binaries are already warm; locally, cargo builds whatever is missing.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

run() {
  echo "==> $*"
  if ! "$@" >"$tmp/last.log" 2>&1; then
    echo "FAILED: $*"
    cat "$tmp/last.log"
    exit 1
  fi
}

# Every examples/*.rs is a registered [[example]] target of seda-examples.
for src in examples/*.rs; do
  name="$(basename "$src" .rs)"
  run cargo run --quiet --release -p seda-examples --example "$name"
done

# Every bench binary. File-consuming/producing binaries work inside the
# temp dir; replay_trace replays the trace gen_trace just wrote.
for src in crates/bench/src/bin/*.rs; do
  name="$(basename "$src" .rs)"
  case "$name" in
    seda_cli)
      run cargo run --quiet --release -p seda-bench --bin seda_cli -- \
        --telemetry "$tmp/telemetry.json" quickstart
      # Paper tables (the table binaries folded into the CLI) and the
      # declarative scenario zoo. `golden_subset` is the smallest scenario
      # that still exercises the full paper lineup on both NPUs.
      for t in 1 2 3; do
        run cargo run --quiet --release -p seda-bench --bin seda_cli -- table "$t"
      done
      run cargo run --quiet --release -p seda-bench --bin seda_cli -- scenario list
      run cargo run --quiet --release -p seda-bench --bin seda_cli -- scenario describe fig6
      run cargo run --quiet --release -p seda-bench --bin seda_cli -- \
        scenario run golden_subset --json "$tmp/golden_subset.json"
      run cargo run --quiet --release -p seda-bench --bin seda_cli -- \
        serve serve_mix --json "$tmp/serve_mix.json"
      ;;
    gen_trace)
      run cargo run --quiet --release -p seda-bench --bin gen_trace -- \
        let edge "$tmp/let.trace"
      ;;
    replay_trace)
      run cargo run --quiet --release -p seda-bench --bin replay_trace -- \
        "$tmp/let.trace" SeDA edge
      ;;
    sweep_bench)
      run cargo run --quiet --release -p seda-bench --bin sweep_bench -- \
        "$tmp/BENCH_sweep.json"
      ;;
    dram_bench)
      run cargo run --quiet --release -p seda-bench --bin dram_bench -- \
        "$tmp/BENCH_dram.json"
      ;;
    serve_bench)
      # A trimmed request count keeps the smoke run short; the CI perf
      # step runs the full 100k-request spec separately.
      run cargo run --quiet --release -p seda-bench --bin serve_bench -- \
        "$tmp/BENCH_serve.json" --requests 10000
      ;;
    telemetry_overhead)
      run cargo run --quiet --release -p seda-bench --bin telemetry_overhead -- \
        "$tmp/BENCH_telemetry.json"
      ;;
    *)
      run cargo run --quiet --release -p seda-bench --bin "$name"
      ;;
  esac
done

echo "smoke: every example and bench binary ran clean"
