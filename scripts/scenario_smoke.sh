#!/usr/bin/env bash
# Smoke-runs every file in scenarios/ through `seda_cli scenario run`,
# proving the whole zoo stays loadable and executable end-to-end, then
# proves the checkpoint/resume path: a golden_subset run killed halfway
# through its journal must resume to a bit-identical snapshot. Any
# non-zero exit fails the script, dumps that run's output, and copies
# the journal/snapshot/log into $SMOKE_ARTIFACT_DIR (default
# smoke-artifacts/) for CI to archive. CI calls this after the release
# build; locally, cargo builds whatever is missing.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
artifacts="${SMOKE_ARTIFACT_DIR:-smoke-artifacts}"

# fail <what> [artifact...] — dump the last log, preserve the named
# artifacts for the CI uploader, and exit nonzero.
fail() {
  what="$1"
  shift
  echo "FAILED: $what"
  [ -f "$tmp/last.log" ] && cat "$tmp/last.log"
  mkdir -p "$artifacts"
  for f in "$@" "$tmp/last.log"; do
    if [ -e "$f" ]; then cp "$f" "$artifacts/"; fi
  done
  echo "failure artifacts preserved under $artifacts/"
  exit 1
}

run_cli() {
  cargo run --quiet --release -p seda-bench --bin seda_cli -- "$@" \
    >"$tmp/last.log" 2>&1
}

ran=0
for src in scenarios/*.json; do
  name="$(basename "$src" .json)"
  echo "==> scenario run $name"
  run_cli scenario run "$name" --journal "$tmp/$name.journal" \
    || fail "scenario run $name" "$src" "$tmp/$name.journal"
  ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
  echo "FAILED: no scenarios found under scenarios/"
  exit 1
fi

# Checkpoint/resume round-trip: truncate the golden_subset journal to
# its header plus half the points (as a killed run would leave it),
# resume from it, and require the resumed snapshot to be bit-identical
# to the clean run's.
echo "==> checkpoint/resume round-trip (golden_subset)"
run_cli scenario run golden_subset \
  --json "$tmp/clean.json" --journal "$tmp/full.journal" \
  || fail "clean golden_subset run" "$tmp/full.journal"
lines=$(wc -l <"$tmp/full.journal")
head -n "$(((lines + 1) / 2))" "$tmp/full.journal" >"$tmp/half.journal"
run_cli scenario run golden_subset \
  --resume "$tmp/half.journal" --json "$tmp/resumed.json" \
  || fail "resumed golden_subset run" "$tmp/half.journal"
diff -q "$tmp/clean.json" "$tmp/resumed.json" >/dev/null \
  || fail "resume bit-identity: clean and resumed snapshots diverge" \
    "$tmp/clean.json" "$tmp/resumed.json" "$tmp/half.journal"

# Serving scenarios: run each through the serving simulator and require
# a clean re-run to reproduce the seda-serve/v1 snapshot byte-for-byte —
# the serving kernel must be a pure function of (scenario, seed).
for name in serve_mix serve_closed_loop serve_swap; do
  echo "==> serve $name (snapshot reproducibility)"
  run_cli serve "$name" --json "$tmp/$name.serve.json" \
    || fail "serve $name" "scenarios/$name.json"
  run_cli serve "$name" --json "$tmp/$name.serve.rerun.json" \
    || fail "serve $name (rerun)" "scenarios/$name.json"
  diff -q "$tmp/$name.serve.json" "$tmp/$name.serve.rerun.json" >/dev/null \
    || fail "serve $name: clean and rerun snapshots diverge" \
      "$tmp/$name.serve.json" "$tmp/$name.serve.rerun.json"
done

echo "smoke: all $ran scenarios ran clean; resume round-trip bit-identical;"
echo "smoke: serving snapshots byte-for-byte reproducible"
