#!/usr/bin/env bash
# Smoke-runs every file in scenarios/ through `seda_cli scenario run`,
# proving the whole zoo stays loadable and executable end-to-end. Any
# non-zero exit fails the script and dumps that run's output. CI calls
# this after the release build; locally, cargo builds whatever is
# missing.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

ran=0
for src in scenarios/*.json; do
  name="$(basename "$src" .json)"
  echo "==> scenario run $name"
  if ! cargo run --quiet --release -p seda-bench --bin seda_cli -- \
    scenario run "$name" >"$tmp/last.log" 2>&1; then
    echo "FAILED: scenario run $name"
    cat "$tmp/last.log"
    exit 1
  fi
  ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
  echo "FAILED: no scenarios found under scenarios/"
  exit 1
fi
echo "smoke: all $ran scenarios ran clean"
